//! Table 2: technical characteristics of the entity collections.

use er_eval::datasets::{Dataset, DatasetId};
use er_eval::report::{sci, Table};
use er_eval::{rtime, timer};
use er_model::matching::TokenSets;

fn main() -> er_model::Result<()> {
    println!("Table 2(a): entity collections for Clean-Clean ER\n");
    let mut clean =
        Table::new(&["", "side", "|E|", "|D(E)|", "|N|", "|P|", "|p~|", "||E||", "RT(E)"]);
    for id in DatasetId::CLEAN {
        let d = Dataset::load(id)?;
        let (n1, n2) = d.collection.sides();
        let (names1, names2) = d.collection.distinct_attribute_names();
        let (pairs1, pairs2) = d.collection.total_name_value_pairs();
        let sets = TokenSets::build(&d.collection);
        let per_cmp = rtime::mean_comparison_cost(&d.collection, &sets, 20_000);
        let brute = d.collection.brute_force_comparisons();
        clean.row(vec![
            id.name().into(),
            "E1".into(),
            sci(n1 as u64),
            sci(d.ground_truth.len() as u64),
            sci(names1 as u64),
            sci(pairs1),
            format!("{:.1}", pairs1 as f64 / n1 as f64),
            sci(brute),
            timer::human(rtime::estimate(brute, per_cmp)),
        ]);
        clean.row(vec![
            "".into(),
            "E2".into(),
            sci(n2 as u64),
            "".into(),
            sci(names2 as u64),
            sci(pairs2),
            format!("{:.1}", pairs2 as f64 / n2 as f64),
            "".into(),
            "".into(),
        ]);
    }
    println!("{}", clean.render());

    println!("Table 2(b): entity collections for Dirty ER\n");
    let mut dirty = Table::new(&["", "|E|", "|D(E)|", "|N|", "|P|", "|p~|", "||E||", "RT(E)"]);
    for id in [DatasetId::D1D, DatasetId::D2D, DatasetId::D3D] {
        let d = Dataset::load(id)?;
        let n = d.collection.len();
        let (names, _) = d.collection.distinct_attribute_names();
        let (pairs, _) = d.collection.total_name_value_pairs();
        let sets = TokenSets::build(&d.collection);
        let per_cmp = rtime::mean_comparison_cost(&d.collection, &sets, 20_000);
        let brute = d.collection.brute_force_comparisons();
        dirty.row(vec![
            id.name().into(),
            sci(n as u64),
            sci(d.ground_truth.len() as u64),
            sci(names as u64),
            sci(pairs),
            format!("{:.1}", pairs as f64 / n as f64),
            sci(brute),
            timer::human(rtime::estimate(brute, per_cmp)),
        ]);
    }
    println!("{}", dirty.render());
    Ok(())
}
