//! Wall-clock timing helpers.

use std::time::{Duration, Instant};

/// Times a closure and returns its result with the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration the way the paper's tables do: `ms` below a second,
/// `sec` below two minutes, `min` below two hours, `hrs` beyond.
pub fn human(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1.0 {
        format!("{:.0} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.1} sec")
    } else if s < 7200.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{:.1} hrs", s / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result() {
        let (v, d) = time(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn human_units() {
        assert_eq!(human(Duration::from_millis(250)), "250 ms");
        assert_eq!(human(Duration::from_secs(5)), "5.0 sec");
        assert_eq!(human(Duration::from_secs(300)), "5.0 min");
        assert_eq!(human(Duration::from_secs(7200)), "2.0 hrs");
    }
}
