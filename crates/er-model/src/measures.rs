//! Effectiveness measures: Pairs Completeness, Pairs Quality, Reduction
//! Ratio (§3 of the paper).

use crate::block::BlockCollection;
use crate::comparisons::Comparison;
use crate::fxhash::FxHashSet;
use crate::groundtruth::GroundTruth;
use crate::ids::EntityId;
use crate::index::EntityIndex;

/// `|D(B)|`: the number of duplicate pairs that co-occur in at least one
/// block, computed in `O(|D(E)|·BPE)` through the entity index rather than by
/// enumerating `‖B‖` comparisons.
pub fn detected_duplicates(index: &EntityIndex, gt: &GroundTruth) -> usize {
    gt.pairs().iter().filter(|c| index.least_common_block(c.a, c.b).is_some()).count()
}

/// Convenience wrapper over [`detected_duplicates`] that builds the index.
pub fn detected_duplicates_in(blocks: &BlockCollection, gt: &GroundTruth) -> usize {
    detected_duplicates(&EntityIndex::build(blocks), gt)
}

/// Pairs Completeness (recall): `PC = |D(B)| / |D(E)|`.
pub fn pairs_completeness(detected: usize, gt_size: usize) -> f64 {
    if gt_size == 0 {
        return 1.0;
    }
    detected as f64 / gt_size as f64
}

/// Pairs Quality (precision): `PQ = |D(B)| / ‖B‖`.
///
/// The denominator counts *all* retained comparisons, including redundant
/// repetitions — the pessimistic estimate the paper defines.
pub fn pairs_quality(detected: usize, comparisons: u64) -> f64 {
    if comparisons == 0 {
        return 0.0;
    }
    detected as f64 / comparisons as f64
}

/// Reduction Ratio: `RR = 1 − ‖B′‖ / ‖B‖`.
pub fn reduction_ratio(before: u64, after: u64) -> f64 {
    if before == 0 {
        return 0.0;
    }
    1.0 - after as f64 / before as f64
}

/// Streaming accumulator for the effectiveness of a *restructured comparison
/// collection* — the output of meta-blocking pruning, which is a stream of
/// retained comparisons rather than blocks.
///
/// Feed every retained comparison (including redundant repetitions) through
/// [`EffectivenessAccumulator::add`]; the accumulator tracks `‖B′‖`
/// pessimistically and `|D(B′)|` over *distinct* duplicate pairs.
#[derive(Debug)]
pub struct EffectivenessAccumulator<'a> {
    gt: &'a GroundTruth,
    found: FxHashSet<u64>,
    total: u64,
}

impl<'a> EffectivenessAccumulator<'a> {
    /// Creates an accumulator against the given ground truth.
    pub fn new(gt: &'a GroundTruth) -> Self {
        EffectivenessAccumulator { gt, found: FxHashSet::default(), total: 0 }
    }

    /// Records one retained comparison.
    #[inline]
    pub fn add(&mut self, a: EntityId, b: EntityId) {
        self.total += 1;
        if self.gt.are_duplicates(a, b) {
            self.found.insert(Comparison::new(a, b).key());
        }
    }

    /// `‖B′‖`: total retained comparisons, counting repetitions.
    pub fn total_comparisons(&self) -> u64 {
        self.total
    }

    /// `|D(B′)|`: distinct duplicate pairs covered.
    pub fn detected(&self) -> usize {
        self.found.len()
    }

    /// `PC` of the accumulated stream.
    pub fn pc(&self) -> f64 {
        pairs_completeness(self.detected(), self.gt.len())
    }

    /// `PQ` of the accumulated stream.
    pub fn pq(&self) -> f64 {
        pairs_quality(self.detected(), self.total)
    }

    /// `RR` of the accumulated stream with respect to a baseline cardinality.
    pub fn rr(&self, before: u64) -> f64 {
        reduction_ratio(before, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::collection::ErKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn setup() -> (BlockCollection, GroundTruth) {
        let blocks = BlockCollection::new(
            ErKind::Dirty,
            6,
            vec![Block::dirty(ids(&[0, 1, 2])), Block::dirty(ids(&[3, 4]))],
        );
        // (0,1) co-occurs, (4,5) does not (5 is in no block).
        let gt =
            GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1)), (EntityId(4), EntityId(5))]);
        (blocks, gt)
    }

    #[test]
    fn detected_duplicates_counts_co_occurring_pairs() {
        let (blocks, gt) = setup();
        assert_eq!(detected_duplicates_in(&blocks, &gt), 1);
    }

    #[test]
    fn pc_pq_rr_formulas() {
        assert_eq!(pairs_completeness(1, 2), 0.5);
        assert_eq!(pairs_completeness(0, 0), 1.0);
        assert_eq!(pairs_quality(1, 4), 0.25);
        assert_eq!(pairs_quality(3, 0), 0.0);
        assert_eq!(reduction_ratio(100, 25), 0.75);
        assert_eq!(reduction_ratio(0, 0), 0.0);
    }

    #[test]
    fn accumulator_counts_repetitions_pessimistically() {
        let (_, gt) = setup();
        let mut acc = EffectivenessAccumulator::new(&gt);
        acc.add(EntityId(0), EntityId(1));
        acc.add(EntityId(1), EntityId(0)); // redundant repetition
        acc.add(EntityId(0), EntityId(2)); // superfluous
        assert_eq!(acc.total_comparisons(), 3);
        assert_eq!(acc.detected(), 1);
        assert_eq!(acc.pc(), 0.5);
        assert!((acc.pq() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(acc.rr(6), 0.5);
    }
}
