//! mb-sanitize: invariant validators for the meta-blocking data structures.
//!
//! Meta-blocking is a chain of restructurings — purging, filtering, edge
//! weighting, pruning — and a bug in any link silently corrupts the
//! comparison collection the next link consumes. The validators here state
//! the structural invariants explicitly and report every breach:
//!
//! * [`BlockCollection::validate`] — entity ids in bounds, no duplicate
//!   members, Dirty blocks have no right side, Clean-Clean blocks keep the
//!   two collections apart;
//! * [`BlockCollection::validate_no_empty_blocks`] — every block entails at
//!   least one comparison (the post-condition of Block Purging and Block
//!   Filtering);
//! * [`EntityIndex::validate`] — the inverted index agrees with the blocks
//!   in both directions, block lists are strictly ascending, no dangling
//!   block ids;
//! * [`EntityIndex::validate_lecobi`] — the LeCoBI condition is internally
//!   consistent: every comparison of every block has a least common block,
//!   and it never exceeds the id of the block entailing the comparison;
//! * [`validate_pruned`] — a pruned collection only ever contains
//!   comparisons entailed by its input (pruning never invents pairs).
//!
//! The validators are always compiled — tests corrupt structures on purpose
//! and assert the reports. The `sanitize` cargo feature additionally wires
//! them into the hot paths as self-checks (see [`EntityIndex::build`] and
//! the `mb-core` pipeline), so `cargo test --features sanitize` exercises
//! every algorithm under continuous validation while release benchmarks run
//! with zero overhead.

use crate::block::BlockCollection;
use crate::collection::ErKind;
use crate::comparisons::ComparisonSet;
use crate::index::EntityIndex;
use std::fmt;

/// One breached invariant, with enough context to locate the corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the breached invariant (e.g. `"dangling-block-id"`).
    pub invariant: &'static str,
    /// Human-readable description pointing at the offending block/entity.
    pub message: String,
}

impl Violation {
    fn new(invariant: &'static str, message: String) -> Self {
        Violation { invariant, message }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.message)
    }
}

/// Panics with every violation listed if `violations` is non-empty.
///
/// The panic message names the call site via `context`, so a sanitize
/// failure deep in a pipeline still says which stage broke the invariant.
pub fn assert_valid(violations: &[Violation], context: &str) {
    if violations.is_empty() {
        return;
    }
    let mut msg = format!("mb-sanitize: {context}: {} violation(s)", violations.len());
    for v in violations {
        msg.push_str("\n  ");
        msg.push_str(&v.to_string());
    }
    // lint:allow(panic-reachability) designed abort: the sanitize layer's
    // whole contract is to halt on broken invariants; serve-path callers
    // validate input before reaching it.
    panic!("{msg}");
}

impl BlockCollection {
    /// Checks the structural invariants every well-formed collection obeys,
    /// regardless of which stage produced it.
    ///
    /// Reported invariants:
    ///
    /// * `entity-out-of-bounds` — a member id is `>= num_entities`;
    /// * `duplicate-member` — an entity appears twice in the same block;
    /// * `dirty-right-side` — a Dirty collection holds a block with a
    ///   right side;
    /// * `intra-source-block` — a Clean-Clean block with one empty side and
    ///   more than one member on the other would entail intra-collection
    ///   comparisons.
    pub fn validate(&self) -> Vec<Violation> {
        let n = self.num_entities();
        let mut out = Vec::new();
        for (k, b) in self.iter().enumerate() {
            let mut members: Vec<u32> = b.entities().map(|e| e.0).collect();
            for &e in &members {
                if e as usize >= n {
                    out.push(Violation::new(
                        "entity-out-of-bounds",
                        format!("block {k}: entity {e} >= num_entities {n}"),
                    ));
                }
            }
            members.sort_unstable();
            for w in members.windows(2) {
                if w[0] == w[1] {
                    out.push(Violation::new(
                        "duplicate-member",
                        format!("block {k}: entity {} appears more than once", w[0]),
                    ));
                }
            }
            match self.kind() {
                ErKind::Dirty => {
                    if !b.right().is_empty() {
                        out.push(Violation::new(
                            "dirty-right-side",
                            format!("block {k}: Dirty collection with a right side"),
                        ));
                    }
                }
                ErKind::CleanClean => {
                    if (b.right().is_empty() && b.left().len() > 1)
                        || (b.left().is_empty() && b.right().len() > 1)
                    {
                        out.push(Violation::new(
                            "intra-source-block",
                            format!(
                                "block {k}: one-sided Clean-Clean block with {} members \
                                 entails intra-collection comparisons",
                                b.size()
                            ),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Checks the Clean-Clean side assignment against the id boundary
    /// `split`: left members must come from the first collection
    /// (`id < split`), right members from the second. Reports
    /// `wrong-side` violations; empty for Dirty collections.
    pub fn validate_split(&self, split: usize) -> Vec<Violation> {
        let mut out = Vec::new();
        if self.kind() != ErKind::CleanClean {
            return out;
        }
        for (k, b) in self.iter().enumerate() {
            for &e in b.left() {
                if e.idx() >= split {
                    out.push(Violation::new(
                        "wrong-side",
                        format!("block {k}: left member {e} has id >= split {split}"),
                    ));
                }
            }
            for &e in b.right() {
                if e.idx() < split {
                    out.push(Violation::new(
                        "wrong-side",
                        format!("block {k}: right member {e} has id < split {split}"),
                    ));
                }
            }
        }
        out
    }

    /// Checks the post-condition of Block Purging and Block Filtering:
    /// every surviving block entails at least one comparison. Reports
    /// `comparison-free-block` violations.
    pub fn validate_no_empty_blocks(&self) -> Vec<Violation> {
        self.iter()
            .enumerate()
            .filter(|(_, b)| !b.has_comparisons())
            .map(|(k, b)| {
                Violation::new(
                    "comparison-free-block",
                    format!("block {k} ({} member(s)) entails no comparison", b.size()),
                )
            })
            .collect()
    }
}

impl EntityIndex {
    /// Checks that the index and the block collection describe the same
    /// assignments.
    ///
    /// Reported invariants:
    ///
    /// * `index-size-mismatch` — the index covers a different number of
    ///   entities than the collection;
    /// * `dangling-block-id` — a block list references a block id the
    ///   collection does not have;
    /// * `unsorted-block-list` — a block list is not strictly ascending;
    /// * `missing-assignment` — a block contains an entity whose list does
    ///   not reference it;
    /// * `phantom-assignment` — a block list references a block that does
    ///   not contain the entity.
    pub fn validate(&self, blocks: &BlockCollection) -> Vec<Violation> {
        let mut out = Vec::new();
        if self.num_entities() != blocks.num_entities() {
            out.push(Violation::new(
                "index-size-mismatch",
                format!(
                    "index covers {} entities, collection has {}",
                    self.num_entities(),
                    blocks.num_entities()
                ),
            ));
            return out; // Entity-wise checks below assume matching sizes.
        }
        let num_blocks = blocks.size() as u32;
        // Reference assignments, rebuilt from the blocks.
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); blocks.num_entities()];
        for (k, b) in blocks.iter().enumerate() {
            for e in b.entities() {
                if e.idx() < expected.len() {
                    expected[e.idx()].push(k as u32);
                }
            }
        }
        for (i, want) in expected.iter_mut().enumerate() {
            let got = self.block_list(crate::ids::EntityId::from_index(i));
            for w in got.windows(2) {
                if w[0] >= w[1] {
                    out.push(Violation::new(
                        "unsorted-block-list",
                        format!("entity {i}: block list not strictly ascending: {got:?}"),
                    ));
                    break;
                }
            }
            for &k in got {
                if k >= num_blocks {
                    out.push(Violation::new(
                        "dangling-block-id",
                        format!("entity {i}: block list references block {k}, collection has {num_blocks}"),
                    ));
                } else if !want.contains(&k) {
                    out.push(Violation::new(
                        "phantom-assignment",
                        format!("entity {i}: indexed under block {k}, which does not contain it"),
                    ));
                }
            }
            want.sort_unstable();
            for &k in want.iter() {
                if !got.contains(&k) {
                    out.push(Violation::new(
                        "missing-assignment",
                        format!("entity {i}: block {k} contains it but its block list does not"),
                    ));
                }
            }
        }
        out
    }

    /// Checks the internal consistency of the LeCoBI condition: every
    /// comparison entailed by a block has a least common block (the pair
    /// demonstrably co-occurs, so the intersection cannot be empty) and it
    /// never exceeds the entailing block's id.
    ///
    /// Costs one block-list intersection per comparison — quadratic in block
    /// size, so reserve it for the `sanitize` feature and tests.
    pub fn validate_lecobi(&self, blocks: &BlockCollection) -> Vec<Violation> {
        let mut out = Vec::new();
        for (k, b) in blocks.iter().enumerate() {
            let k = k as u32;
            b.for_each_comparison(|x, y| match self.least_common_block(x, y) {
                None => out.push(Violation::new(
                    "lecobi-no-common-block",
                    format!(
                        "pair {x}-{y} co-occurs in block {k} but the index finds no common block"
                    ),
                )),
                Some(lcb) if lcb.0 > k => out.push(Violation::new(
                    "lecobi-after-entailing-block",
                    format!(
                        "pair {x}-{y}: least common block {} exceeds entailing block {k}",
                        lcb.0
                    ),
                )),
                Some(_) => {}
            });
        }
        out
    }
}

/// Checks the fundamental pruning post-condition: the pruned collection's
/// comparisons are a subset of the input's — pruning discards pairs, it
/// never invents them. Reports `comparison-not-in-input` violations.
pub fn validate_pruned(pruned: &BlockCollection, input: &BlockCollection) -> Vec<Violation> {
    let mut allowed = ComparisonSet::with_capacity(input.total_comparisons() as usize);
    input.for_each_comparison(|a, b| {
        allowed.insert(a, b);
    });
    let mut out = Vec::new();
    let mut reported = ComparisonSet::new();
    pruned.for_each_comparison(|a, b| {
        if !allowed.contains(a, b) && reported.insert(a, b) {
            out.push(Violation::new(
                "comparison-not-in-input",
                format!("pruned collection compares {a}-{b}, which the input never entailed"),
            ));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::ids::EntityId;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn well_formed() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            5,
            vec![Block::dirty(ids(&[0, 1])), Block::dirty(ids(&[1, 2, 3]))],
        )
    }

    #[test]
    fn well_formed_collection_is_clean() {
        let c = well_formed();
        assert!(c.validate().is_empty());
        assert!(c.validate_no_empty_blocks().is_empty());
        let idx = EntityIndex::build(&c);
        assert!(idx.validate(&c).is_empty());
        assert!(idx.validate_lecobi(&c).is_empty());
    }

    #[test]
    fn out_of_bounds_entity_is_reported() {
        let c = BlockCollection::new(ErKind::Dirty, 2, vec![Block::dirty(ids(&[0, 7]))]);
        let v = c.validate();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "entity-out-of-bounds");
        assert!(v[0].message.contains("entity 7"), "{}", v[0].message);
    }

    #[test]
    fn duplicate_member_is_reported() {
        let c = BlockCollection::new(ErKind::Dirty, 3, vec![Block::dirty(ids(&[1, 2, 1]))]);
        let v = c.validate();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "duplicate-member");
    }

    #[test]
    fn dirty_block_with_right_side_is_reported() {
        let c =
            BlockCollection::new(ErKind::Dirty, 4, vec![Block::clean_clean(ids(&[0]), ids(&[2]))]);
        assert_eq!(c.validate()[0].invariant, "dirty-right-side");
    }

    #[test]
    fn one_sided_clean_clean_block_is_reported() {
        let c = BlockCollection::new(
            ErKind::CleanClean,
            4,
            vec![Block::clean_clean(ids(&[0, 1]), ids(&[]))],
        );
        assert_eq!(c.validate()[0].invariant, "intra-source-block");
    }

    #[test]
    fn split_side_assignment_is_checked() {
        let c = BlockCollection::new(
            ErKind::CleanClean,
            4,
            vec![Block::clean_clean(ids(&[0, 3]), ids(&[1]))],
        );
        let v = c.validate_split(2);
        // Left member 3 is from the second collection, right member 1 from
        // the first: two violations.
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.invariant == "wrong-side"));
        assert!(c.validate_split(4).len() == 1); // right member 1 < split 4
    }

    #[test]
    fn comparison_free_block_is_reported() {
        let c = BlockCollection::new(
            ErKind::Dirty,
            3,
            vec![Block::dirty(ids(&[0, 1])), Block::dirty(ids(&[2]))],
        );
        let v = c.validate_no_empty_blocks();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "comparison-free-block");
        assert!(v[0].message.contains("block 1"), "{}", v[0].message);
    }

    #[test]
    fn assert_valid_panics_with_context() {
        let v = vec![Violation::new("test-invariant", "broken".into())];
        let err = std::panic::catch_unwind(|| assert_valid(&v, "unit-test")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("unit-test"), "{msg}");
        assert!(msg.contains("test-invariant"), "{msg}");
        assert_valid(&[], "no violations: no panic");
    }

    #[test]
    fn pruned_subset_holds_and_injection_is_caught() {
        let input = well_formed();
        // A legitimate pruning result: a subset of the input's pairs.
        let pruned = BlockCollection::new(ErKind::Dirty, 5, vec![Block::dirty(ids(&[1, 2]))]);
        assert!(validate_pruned(&pruned, &input).is_empty());
        // Inject a comparison the input never entailed: (0, 4).
        let corrupt = BlockCollection::new(
            ErKind::Dirty,
            5,
            vec![Block::dirty(ids(&[1, 2])), Block::dirty(ids(&[0, 4]))],
        );
        let v = validate_pruned(&corrupt, &input);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "comparison-not-in-input");
        assert!(v[0].message.contains("p0-p4"), "{}", v[0].message);
    }
}
