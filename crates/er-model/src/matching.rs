//! Entity matching.
//!
//! The paper treats matching as orthogonal to blocking, but needs a concrete
//! matcher in two places: Resolution Time accounting ("we use the Jaccard
//! similarity of all tokens in the values of two entity profiles for entity
//! matching") and Iterative Blocking, whose propagation depends on match
//! decisions. Both are served here, plus a ground-truth oracle used for the
//! idealized baseline accounting.

use crate::collection::EntityCollection;
use crate::groundtruth::GroundTruth;
use crate::ids::EntityId;
use crate::tokenize::{token_id_set, Interner};

/// Pre-computed token-id sets (sorted, deduplicated) for every profile of a
/// collection. Building this once turns each Jaccard evaluation into a
/// linear merge of two sorted `u32` slices.
#[derive(Debug, Clone)]
pub struct TokenSets {
    sets: Vec<Vec<u32>>,
}

impl TokenSets {
    /// Tokenizes every profile of `collection`.
    pub fn build(collection: &EntityCollection) -> Self {
        let mut interner = Interner::new();
        let sets =
            collection.profiles().iter().map(|p| token_id_set(p.values(), &mut interner)).collect();
        TokenSets { sets }
    }

    /// The token-id set of a profile.
    pub fn get(&self, id: EntityId) -> &[u32] {
        &self.sets[id.idx()]
    }

    /// Number of profiles covered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no profile is covered.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Jaccard similarity of the token sets of two profiles.
    pub fn jaccard(&self, a: EntityId, b: EntityId) -> f64 {
        jaccard_sorted(self.get(a), self.get(b))
    }
}

/// Jaccard similarity of two sorted, deduplicated id slices.
pub fn jaccard_sorted(x: &[u32], y: &[u32]) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < x.len() && j < y.len() {
        match x[i].cmp(&y[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = x.len() + y.len() - inter;
    inter as f64 / union as f64
}

/// A pairwise match decision procedure.
pub trait Matcher {
    /// Whether the two profiles are deemed duplicates.
    fn is_match(&self, a: EntityId, b: EntityId) -> bool;
}

/// Matches profiles whose token-set Jaccard similarity reaches a threshold.
#[derive(Debug)]
pub struct JaccardMatcher {
    sets: TokenSets,
    threshold: f64,
}

impl JaccardMatcher {
    /// Builds the matcher over a collection with the given threshold.
    pub fn new(collection: &EntityCollection, threshold: f64) -> Self {
        JaccardMatcher { sets: TokenSets::build(collection), threshold }
    }

    /// Builds the matcher from pre-computed token sets.
    pub fn from_sets(sets: TokenSets, threshold: f64) -> Self {
        JaccardMatcher { sets, threshold }
    }

    /// The underlying token sets.
    pub fn sets(&self) -> &TokenSets {
        &self.sets
    }
}

impl Matcher for JaccardMatcher {
    fn is_match(&self, a: EntityId, b: EntityId) -> bool {
        self.sets.jaccard(a, b) >= self.threshold
    }
}

/// A ground-truth oracle: matches exactly the duplicate pairs.
///
/// The paper's Iterative-Blocking baseline is evaluated under the "ideal
/// case" assumption; this oracle reproduces that accounting.
#[derive(Debug, Clone, Copy)]
pub struct OracleMatcher<'a> {
    gt: &'a GroundTruth,
}

impl<'a> OracleMatcher<'a> {
    /// Creates the oracle over a ground truth.
    pub fn new(gt: &'a GroundTruth) -> Self {
        OracleMatcher { gt }
    }
}

impl Matcher for OracleMatcher<'_> {
    fn is_match(&self, a: EntityId, b: EntityId) -> bool {
        self.gt.are_duplicates(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EntityProfile;

    fn collection() -> EntityCollection {
        EntityCollection::dirty(vec![
            EntityProfile::new("0").with("name", "jack lloyd miller").with("job", "auto seller"),
            EntityProfile::new("1")
                .with("fullname", "jack miller")
                .with("work", "car vendor seller"),
            EntityProfile::new("2").with("name", "erick green"),
            EntityProfile::new("3").with("x", ""),
        ])
    }

    #[test]
    fn jaccard_sorted_basics() {
        assert_eq!(jaccard_sorted(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard_sorted(&[1], &[1]), 1.0);
        assert_eq!(jaccard_sorted(&[1], &[2]), 0.0);
        assert_eq!(jaccard_sorted(&[], &[]), 0.0);
        assert_eq!(jaccard_sorted(&[], &[1]), 0.0);
    }

    #[test]
    fn token_sets_jaccard() {
        let sets = TokenSets::build(&collection());
        assert_eq!(sets.len(), 4);
        // p0 tokens: {jack, lloyd, miller, auto, seller} (5)
        // p1 tokens: {jack, miller, car, vendor, seller} (5)
        // intersection = {jack, miller, seller} (3); union = 7.
        let sim = sets.jaccard(EntityId(0), EntityId(1));
        assert!((sim - 3.0 / 7.0).abs() < 1e-12);
        // Empty-value profile has an empty token set.
        assert!(sets.get(EntityId(3)).is_empty());
        assert_eq!(sets.jaccard(EntityId(2), EntityId(3)), 0.0);
    }

    #[test]
    fn jaccard_matcher_threshold() {
        let c = collection();
        let m = JaccardMatcher::new(&c, 0.4);
        assert!(m.is_match(EntityId(0), EntityId(1)));
        assert!(!m.is_match(EntityId(0), EntityId(2)));
        let strict = JaccardMatcher::new(&c, 0.5);
        assert!(!strict.is_match(EntityId(0), EntityId(1)));
    }

    #[test]
    fn oracle_matcher_follows_ground_truth() {
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1))]);
        let m = OracleMatcher::new(&gt);
        assert!(m.is_match(EntityId(1), EntityId(0)));
        assert!(!m.is_match(EntityId(0), EntityId(2)));
    }
}
