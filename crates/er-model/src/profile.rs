//! Entity profiles: uniquely identified collections of name–value pairs.

use std::fmt;

/// A single name–value pair of an [`EntityProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name. Schema-agnostic blocking ignores it, but it is kept
    /// for attribute-aware methods (e.g. Attribute-Clustering Blocking) and
    /// for dataset statistics (|N| in Table 2 of the paper).
    pub name: String,
    /// Attribute value. Free text; blocking tokenizes it.
    pub value: String,
}

/// An entity profile: "a uniquely identified collection of name-value pairs
/// that describe a real-world object" (§3 of the paper).
///
/// Profiles are schema-free: two profiles describing the same object may use
/// entirely different attribute names, different numbers of attributes, and
/// noisy values. This is exactly the heterogeneity that schema-agnostic
/// blocking tolerates.
///
/// ```
/// use er_model::EntityProfile;
///
/// let p = EntityProfile::new("dblp/123")
///     .with("FullName", "Jack Lloyd Miller")
///     .with("job", "auto seller");
/// assert_eq!(p.attributes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityProfile {
    /// External identifier (URL, database key, …). Not used by any algorithm;
    /// retained for traceability of results.
    uri: String,
    attributes: Vec<Attribute>,
}

impl EntityProfile {
    /// Creates an empty profile with the given external identifier.
    pub fn new(uri: impl Into<String>) -> Self {
        EntityProfile { uri: uri.into(), attributes: Vec::new() }
    }

    /// Builder-style attribute insertion.
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.add(name, value);
        self
    }

    /// Appends a name–value pair.
    pub fn add(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.attributes.push(Attribute { name: name.into(), value: value.into() });
    }

    /// The external identifier.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// All name–value pairs, in insertion order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Iterator over attribute values only (what schema-agnostic blocking
    /// consumes).
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.value.as_str())
    }

    /// Number of name–value pairs (the per-profile `|p̄|` statistic of
    /// Table 2 averages this).
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the profile has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

impl fmt::Display for EntityProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{", self.uri)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.value)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_attributes() {
        let p = EntityProfile::new("e1").with("name", "Erick Green").with("profession", "vendor");
        assert_eq!(p.uri(), "e1");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.attributes()[1].name, "profession");
    }

    #[test]
    fn values_iterates_in_order() {
        let p = EntityProfile::new("e2").with("a", "x").with("b", "y");
        let vals: Vec<&str> = p.values().collect();
        assert_eq!(vals, ["x", "y"]);
    }

    #[test]
    fn empty_profile() {
        let p = EntityProfile::new("e3");
        assert!(p.is_empty());
        assert_eq!(p.values().count(), 0);
    }

    #[test]
    fn display_is_readable() {
        let p = EntityProfile::new("e4").with("name", "Nick Papas");
        assert_eq!(p.to_string(), "e4 {name: Nick Papas}");
    }

    #[test]
    fn duplicate_attribute_names_are_allowed() {
        // Web data frequently repeats the same attribute name.
        let p = EntityProfile::new("e5").with("tag", "a").with("tag", "b");
        assert_eq!(p.len(), 2);
    }
}
