//! A fast, non-cryptographic hasher for id-keyed maps and sets.
//!
//! The meta-blocking hot paths hash millions of small integer keys (entity
//! ids, packed comparison keys, token ids). The standard library's SipHash is
//! DoS-resistant but needlessly slow for that workload; this module provides
//! the well-known FxHash multiply-rotate mix (as used by rustc) so we do not
//! need an external dependency.
//!
//! The implementation is deterministic: identical inputs hash identically
//! across runs, which keeps experiment output reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing function: one multiply and one rotate per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("token"), hash_one("token"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one("a"), hash_one("b"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m[&1], 10);

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn handles_unaligned_tails() {
        // Exercises the chunk remainder path with byte strings of every
        // length 0..=16.
        let bytes: Vec<u8> = (1u8..=16).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=16 {
            let mut h = FxHasher::default();
            h.write(&bytes[..len]);
            seen.insert(h.finish());
        }
        // All prefixes hash differently (no collisions among 17 values).
        assert_eq!(seen.len(), 17);
    }
}
