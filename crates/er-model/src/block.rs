//! Blocks and block collections.

use crate::collection::ErKind;
use crate::ids::EntityId;

/// A single block: a set of entity profiles deemed similar enough to be
/// compared with one another.
///
/// For Dirty ER all profiles live in `left` and the block entails all
/// `|b|·(|b|−1)/2` intra-block pairs. For Clean-Clean ER, `left` holds the
/// E₁ profiles and `right` the E₂ profiles; only the `|left|·|right|`
/// cross-collection pairs are comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    left: Vec<EntityId>,
    right: Vec<EntityId>,
}

impl Block {
    /// Creates a Dirty ER block.
    pub fn dirty(entities: Vec<EntityId>) -> Self {
        Block { left: entities, right: Vec::new() }
    }

    /// Creates a Clean-Clean ER block from the E₁ and E₂ members.
    pub fn clean_clean(left: Vec<EntityId>, right: Vec<EntityId>) -> Self {
        Block { left, right }
    }

    /// E₁ members (all members for Dirty ER).
    pub fn left(&self) -> &[EntityId] {
        &self.left
    }

    /// E₂ members (empty for Dirty ER).
    pub fn right(&self) -> &[EntityId] {
        &self.right
    }

    /// Block size `|b|`: the number of profiles it contains.
    pub fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Block cardinality `‖b‖`: the number of comparisons it entails.
    pub fn cardinality(&self) -> u64 {
        if self.right.is_empty() {
            let n = self.left.len() as u64;
            n * n.saturating_sub(1) / 2
        } else {
            self.left.len() as u64 * self.right.len() as u64
        }
    }

    /// Whether the block entails at least one comparison.
    pub fn has_comparisons(&self) -> bool {
        if self.right.is_empty() {
            self.left.len() > 1
        } else {
            !self.left.is_empty()
        }
    }

    /// Iterator over every profile in the block.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.left.iter().chain(self.right.iter()).copied()
    }

    /// Invokes `f` for every comparison the block entails.
    ///
    /// Pairs are emitted with the lower id first for Dirty ER and as
    /// (E₁ member, E₂ member) for Clean-Clean ER.
    pub fn for_each_comparison(&self, mut f: impl FnMut(EntityId, EntityId)) {
        if self.right.is_empty() {
            for (i, &a) in self.left.iter().enumerate() {
                for &b in &self.left[i + 1..] {
                    if a < b {
                        f(a, b);
                    } else {
                        f(b, a);
                    }
                }
            }
        } else {
            for &a in &self.left {
                for &b in &self.right {
                    f(a, b);
                }
            }
        }
    }

    /// Removes the given entity from the block, preserving order.
    /// Returns whether it was present.
    pub fn remove(&mut self, id: EntityId) -> bool {
        if let Some(pos) = self.left.iter().position(|&e| e == id) {
            self.left.remove(pos);
            return true;
        }
        if let Some(pos) = self.right.iter().position(|&e| e == id) {
            self.right.remove(pos);
            return true;
        }
        false
    }
}

/// A set of blocks produced by a blocking method, together with the context
/// needed to interpret it (task kind and input-collection size).
#[derive(Debug, Clone)]
pub struct BlockCollection {
    kind: ErKind,
    /// `|E|` of the input entity collection (not just the profiles that
    /// survived blocking) — the denominator of BPE.
    num_entities: usize,
    blocks: Vec<Block>,
}

impl BlockCollection {
    /// Creates a block collection.
    pub fn new(kind: ErKind, num_entities: usize, blocks: Vec<Block>) -> Self {
        BlockCollection { kind, num_entities, blocks }
    }

    /// The ER task this collection belongs to.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// `|E|`: the size of the input entity collection.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// `|B|`: the number of blocks.
    pub fn size(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the collection holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The blocks, in processing order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mutable access to the blocks (used by restructuring methods).
    pub fn blocks_mut(&mut self) -> &mut Vec<Block> {
        &mut self.blocks
    }

    /// `‖B‖`: the total number of comparisons, `Σ_b ‖b‖`.
    pub fn total_comparisons(&self) -> u64 {
        self.blocks.iter().map(Block::cardinality).sum()
    }

    /// `Σ_b |b|`: the total number of block assignments.
    pub fn total_assignments(&self) -> u64 {
        self.blocks.iter().map(|b| b.size() as u64).sum()
    }

    /// BPE(B) = `Σ_b |b| / |E|`: the average number of blocks per profile
    /// (§4.3 of the paper).
    pub fn blocks_per_entity(&self) -> f64 {
        if self.num_entities == 0 {
            return 0.0;
        }
        self.total_assignments() as f64 / self.num_entities as f64
    }

    /// Sorts blocks in ascending cardinality — the processing order used by
    /// Block Filtering and Iterative Blocking ("the less comparisons a block
    /// contains, the more important it is"). Ties keep their relative order
    /// so the result is deterministic.
    pub fn sort_by_cardinality_ascending(&mut self) {
        self.blocks.sort_by_key(Block::cardinality);
    }

    /// Invokes `f` for every comparison of every block, including redundant
    /// repetitions across blocks.
    pub fn for_each_comparison(&self, mut f: impl FnMut(EntityId, EntityId)) {
        for b in &self.blocks {
            b.for_each_comparison(&mut f);
        }
    }

    /// Counts the profiles that appear in at least one block — `|V_B|`,
    /// the order of the blocking graph.
    pub fn placed_entities(&self) -> usize {
        let mut seen = vec![false; self.num_entities];
        let mut count = 0usize;
        for b in &self.blocks {
            for e in b.entities() {
                if !seen[e.idx()] {
                    seen[e.idx()] = true;
                    count += 1;
                }
            }
        }
        count
    }

    /// The number of blocks each entity is assigned to, `|B_i|`.
    pub fn assignments_per_entity(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_entities];
        for b in &self.blocks {
            for e in b.entities() {
                counts[e.idx()] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    #[test]
    fn dirty_block_cardinality() {
        let b = Block::dirty(ids(&[0, 1, 2, 3]));
        assert_eq!(b.size(), 4);
        assert_eq!(b.cardinality(), 6);
        assert!(b.has_comparisons());
    }

    #[test]
    fn singleton_dirty_block_has_no_comparisons() {
        let b = Block::dirty(ids(&[5]));
        assert_eq!(b.cardinality(), 0);
        assert!(!b.has_comparisons());
    }

    #[test]
    fn clean_clean_block_cardinality() {
        let b = Block::clean_clean(ids(&[0, 1]), ids(&[7, 8, 9]));
        assert_eq!(b.size(), 5);
        assert_eq!(b.cardinality(), 6);
    }

    #[test]
    fn clean_clean_block_without_right_side() {
        let b = Block::clean_clean(ids(&[0, 1]), ids(&[]));
        // Constructed as clean-clean but with an empty right side it behaves
        // as a dirty block; blocking methods never build such blocks.
        assert_eq!(b.cardinality(), 1);
    }

    #[test]
    fn dirty_comparisons_are_canonical() {
        let b = Block::dirty(ids(&[3, 1, 2]));
        let mut pairs = Vec::new();
        b.for_each_comparison(|a, c| pairs.push((a.0, c.0)));
        assert_eq!(pairs, vec![(1, 3), (2, 3), (1, 2)]);
        assert!(pairs.iter().all(|&(a, c)| a < c));
    }

    #[test]
    fn clean_clean_comparisons_cross_only() {
        let b = Block::clean_clean(ids(&[0]), ids(&[5, 6]));
        let mut pairs = Vec::new();
        b.for_each_comparison(|a, c| pairs.push((a.0, c.0)));
        assert_eq!(pairs, vec![(0, 5), (0, 6)]);
    }

    #[test]
    fn remove_entity() {
        let mut b = Block::clean_clean(ids(&[0, 1]), ids(&[5]));
        assert!(b.remove(EntityId(1)));
        assert!(!b.remove(EntityId(1)));
        assert!(b.remove(EntityId(5)));
        assert_eq!(b.size(), 1);
    }

    fn sample_collection() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            6,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[3, 4, 5])),
            ],
        )
    }

    #[test]
    fn collection_statistics() {
        let c = sample_collection();
        assert_eq!(c.size(), 3);
        assert_eq!(c.total_comparisons(), 1 + 3 + 3);
        assert_eq!(c.total_assignments(), 8);
        assert!((c.blocks_per_entity() - 8.0 / 6.0).abs() < 1e-12);
        assert_eq!(c.placed_entities(), 6);
        assert_eq!(c.assignments_per_entity(), vec![2, 2, 1, 1, 1, 1]);
    }

    #[test]
    fn sort_ascending_cardinality() {
        let mut c = sample_collection();
        c.blocks_mut().reverse();
        c.sort_by_cardinality_ascending();
        let cards: Vec<u64> = c.blocks().iter().map(Block::cardinality).collect();
        assert_eq!(cards, vec![1, 3, 3]);
        // Stable: the two cardinality-3 blocks keep their relative order.
        assert_eq!(c.blocks()[1].left()[0], EntityId(3));
    }

    #[test]
    fn for_each_comparison_spans_blocks() {
        let c = sample_collection();
        let mut n = 0u64;
        c.for_each_comparison(|_, _| n += 1);
        assert_eq!(n, c.total_comparisons());
    }

    #[test]
    fn empty_collection_statistics() {
        let c = BlockCollection::new(ErKind::Dirty, 0, vec![]);
        assert!(c.is_empty());
        assert_eq!(c.blocks_per_entity(), 0.0);
        assert_eq!(c.placed_entities(), 0);
    }
}
