//! Blocks and block collections.
//!
//! [`BlockCollection`] stores its blocks in a CSR arena — one contiguous
//! member pool plus per-block offsets, mirroring [`crate::EntityIndex`]'s
//! flat layout — so the hot sweeps (ScanCount, Block Filtering, purging,
//! Comparison Propagation) walk contiguous memory instead of chasing one
//! heap `Vec` per block. [`Block`] remains the owned construction type;
//! reading goes through the borrowed [`BlockRef`] view.

use crate::collection::ErKind;
use crate::ids::EntityId;

/// A single block under construction: a set of entity profiles deemed
/// similar enough to be compared with one another.
///
/// For Dirty ER all profiles live in `left` and the block entails all
/// `|b|·(|b|−1)/2` intra-block pairs. For Clean-Clean ER, `left` holds the
/// E₁ profiles and `right` the E₂ profiles; only the `|left|·|right|`
/// cross-collection pairs are comparisons.
///
/// `Block` is the *input* type: blocking methods and tests build owned
/// blocks and hand them to [`BlockCollection::from_blocks`], which flattens
/// them into the arena. Reading a stored block yields a [`BlockRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    left: Vec<EntityId>,
    right: Vec<EntityId>,
}

impl Block {
    /// Creates a Dirty ER block.
    pub fn dirty(entities: Vec<EntityId>) -> Self {
        Block { left: entities, right: Vec::new() }
    }

    /// Creates a Clean-Clean ER block from the E₁ and E₂ members.
    pub fn clean_clean(left: Vec<EntityId>, right: Vec<EntityId>) -> Self {
        Block { left, right }
    }

    /// E₁ members (all members for Dirty ER).
    pub fn left(&self) -> &[EntityId] {
        &self.left
    }

    /// E₂ members (empty for Dirty ER).
    pub fn right(&self) -> &[EntityId] {
        &self.right
    }

    /// The borrowed view of this block.
    pub fn as_ref(&self) -> BlockRef<'_> {
        BlockRef { left: &self.left, right: &self.right }
    }

    /// Block size `|b|`: the number of profiles it contains.
    pub fn size(&self) -> usize {
        self.as_ref().size()
    }

    /// Block cardinality `‖b‖`: the number of comparisons it entails.
    pub fn cardinality(&self) -> u64 {
        self.as_ref().cardinality()
    }

    /// Whether the block entails at least one comparison.
    pub fn has_comparisons(&self) -> bool {
        self.as_ref().has_comparisons()
    }

    /// Iterator over every profile in the block.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.left.iter().chain(self.right.iter()).copied()
    }

    /// Invokes `f` for every comparison the block entails.
    ///
    /// Pairs are emitted with the lower id first for Dirty ER and as
    /// (E₁ member, E₂ member) for Clean-Clean ER.
    pub fn for_each_comparison(&self, f: impl FnMut(EntityId, EntityId)) {
        self.as_ref().for_each_comparison(f);
    }

    /// Removes the given entity from the block, preserving order.
    /// Returns whether it was present.
    pub fn remove(&mut self, id: EntityId) -> bool {
        if let Some(pos) = self.left.iter().position(|&e| e == id) {
            self.left.remove(pos);
            return true;
        }
        if let Some(pos) = self.right.iter().position(|&e| e == id) {
            self.right.remove(pos);
            return true;
        }
        false
    }
}

/// A borrowed view of one block stored in a [`BlockCollection`] arena.
///
/// Copying the view copies two slice headers, never the members; all the
/// statistics of [`Block`] are available here without owning the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRef<'a> {
    left: &'a [EntityId],
    right: &'a [EntityId],
}

impl<'a> BlockRef<'a> {
    /// A view over explicit member slices (used by tests and validators).
    pub fn from_slices(left: &'a [EntityId], right: &'a [EntityId]) -> BlockRef<'a> {
        BlockRef { left, right }
    }

    /// E₁ members (all members for Dirty ER).
    pub fn left(&self) -> &'a [EntityId] {
        self.left
    }

    /// E₂ members (empty for Dirty ER).
    pub fn right(&self) -> &'a [EntityId] {
        self.right
    }

    /// Block size `|b|`: the number of profiles it contains.
    pub fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Block cardinality `‖b‖`: the number of comparisons it entails.
    pub fn cardinality(&self) -> u64 {
        if self.right.is_empty() {
            let n = self.left.len() as u64;
            n * n.saturating_sub(1) / 2
        } else {
            self.left.len() as u64 * self.right.len() as u64
        }
    }

    /// Whether the block entails at least one comparison.
    pub fn has_comparisons(&self) -> bool {
        if self.right.is_empty() {
            self.left.len() > 1
        } else {
            !self.left.is_empty()
        }
    }

    /// Iterator over every profile in the block.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + 'a {
        self.left.iter().chain(self.right.iter()).copied()
    }

    /// Invokes `f` for every comparison the block entails.
    ///
    /// Pairs are emitted with the lower id first for Dirty ER and as
    /// (E₁ member, E₂ member) for Clean-Clean ER.
    pub fn for_each_comparison(&self, mut f: impl FnMut(EntityId, EntityId)) {
        if self.right.is_empty() {
            for (i, &a) in self.left.iter().enumerate() {
                for &b in &self.left[i + 1..] {
                    if a < b {
                        f(a, b);
                    } else {
                        f(b, a);
                    }
                }
            }
        } else {
            for &a in self.left {
                for &b in self.right {
                    f(a, b);
                }
            }
        }
    }

    /// An owned copy of the viewed block.
    pub fn to_block(&self) -> Block {
        Block { left: self.left.to_vec(), right: self.right.to_vec() }
    }
}

/// A set of blocks produced by a blocking method, together with the context
/// needed to interpret it (task kind and input-collection size).
///
/// # Memory layout
///
/// The blocks live in a CSR arena: block `k`'s members are
/// `members[offsets[k]..offsets[k + 1]]`, with `splits[k]` marking the
/// absolute boundary between its E₁ (left) and E₂ (right) members. Dirty
/// blocks have `splits[k] == offsets[k + 1]` (no right side). The arena
/// keeps the whole collection in three allocations regardless of block
/// count, and a sweep over all members is one linear scan.
#[derive(Debug, Clone)]
pub struct BlockCollection {
    kind: ErKind,
    /// `|E|` of the input entity collection (not just the profiles that
    /// survived blocking) — the denominator of BPE.
    num_entities: usize,
    members: Vec<EntityId>,
    /// `size() + 1` member-pool offsets; `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Per-block absolute offset of the left/right boundary.
    splits: Vec<u32>,
}

impl BlockCollection {
    /// Creates a block collection by flattening owned blocks into the
    /// arena (alias: [`BlockCollection::from_blocks`]).
    pub fn new(kind: ErKind, num_entities: usize, blocks: Vec<Block>) -> Self {
        BlockCollection::from_blocks(kind, num_entities, blocks)
    }

    /// Flattens owned blocks into a CSR arena, preserving block order and
    /// member order exactly.
    pub fn from_blocks(kind: ErKind, num_entities: usize, blocks: Vec<Block>) -> Self {
        let total: usize = blocks.iter().map(Block::size).sum();
        let mut builder =
            BlockCollectionBuilder::with_capacity(kind, num_entities, blocks.len(), total);
        for b in &blocks {
            builder.begin();
            for &e in &b.left {
                builder.push_left(e);
            }
            for &e in &b.right {
                builder.push_right(e);
            }
            builder.commit();
        }
        builder.finish()
    }

    /// The ER task this collection belongs to.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// `|E|`: the size of the input entity collection.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// `|B|`: the number of blocks.
    pub fn size(&self) -> usize {
        self.splits.len()
    }

    /// Whether the collection holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }

    /// The view of block `k` (in processing order).
    #[inline]
    pub fn block(&self, k: usize) -> BlockRef<'_> {
        let lo = self.offsets[k] as usize;
        let hi = self.offsets[k + 1] as usize;
        let split = self.splits[k] as usize;
        BlockRef { left: &self.members[lo..split], right: &self.members[split..hi] }
    }

    /// Iterates the block views in processing order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = BlockRef<'_>> + Clone {
        (0..self.size()).map(move |k| self.block(k))
    }

    /// `‖B‖`: the total number of comparisons, `Σ_b ‖b‖`.
    pub fn total_comparisons(&self) -> u64 {
        self.iter().map(|b| b.cardinality()).sum()
    }

    /// `Σ_b |b|`: the total number of block assignments.
    pub fn total_assignments(&self) -> u64 {
        self.members.len() as u64
    }

    /// BPE(B) = `Σ_b |b| / |E|`: the average number of blocks per profile
    /// (§4.3 of the paper).
    pub fn blocks_per_entity(&self) -> f64 {
        if self.num_entities == 0 {
            return 0.0;
        }
        self.total_assignments() as f64 / self.num_entities as f64
    }

    /// Keeps only the blocks for which `pred` holds, preserving order and
    /// compacting the arena in place.
    pub fn retain(&mut self, mut pred: impl FnMut(BlockRef<'_>) -> bool) {
        let mut write_member = 0usize;
        let mut write_block = 0usize;
        for k in 0..self.size() {
            let lo = self.offsets[k] as usize;
            let hi = self.offsets[k + 1] as usize;
            let split = self.splits[k] as usize;
            let keep =
                pred(BlockRef { left: &self.members[lo..split], right: &self.members[split..hi] });
            if keep {
                self.members.copy_within(lo..hi, write_member);
                self.splits[write_block] = (write_member + (split - lo)) as u32;
                write_member += hi - lo;
                self.offsets[write_block + 1] = write_member as u32;
                write_block += 1;
            }
        }
        self.members.truncate(write_member);
        self.offsets.truncate(write_block + 1);
        self.splits.truncate(write_block);
    }

    /// Sorts blocks in ascending cardinality — the processing order used by
    /// Block Filtering and Iterative Blocking ("the less comparisons a block
    /// contains, the more important it is"). Ties keep their relative order
    /// so the result is deterministic.
    pub fn sort_by_cardinality_ascending(&mut self) {
        let mut order: Vec<u32> = (0..self.size() as u32).collect();
        order.sort_by_key(|&k| self.block(k as usize).cardinality());
        self.reorder(&order);
    }

    /// Rebuilds the arena with blocks in the given order (a permutation of
    /// `0..size()`).
    fn reorder(&mut self, order: &[u32]) {
        let mut members = Vec::with_capacity(self.members.len());
        let mut offsets = Vec::with_capacity(self.offsets.len());
        let mut splits = Vec::with_capacity(self.splits.len());
        offsets.push(0u32);
        for &k in order {
            let b = self.block(k as usize);
            members.extend_from_slice(b.left);
            splits.push(members.len() as u32);
            members.extend_from_slice(b.right);
            offsets.push(members.len() as u32);
        }
        self.members = members;
        self.offsets = offsets;
        self.splits = splits;
    }

    /// Invokes `f` for every comparison of every block, including redundant
    /// repetitions across blocks.
    pub fn for_each_comparison(&self, mut f: impl FnMut(EntityId, EntityId)) {
        for b in self.iter() {
            b.for_each_comparison(&mut f);
        }
    }

    /// Counts the profiles that appear in at least one block — `|V_B|`,
    /// the order of the blocking graph.
    pub fn placed_entities(&self) -> usize {
        let mut seen = vec![false; self.num_entities];
        let mut count = 0usize;
        for &e in &self.members {
            if !seen[e.idx()] {
                seen[e.idx()] = true;
                count += 1;
            }
        }
        count
    }

    /// The number of blocks each entity is assigned to, `|B_i|`.
    pub fn assignments_per_entity(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_entities];
        for &e in &self.members {
            counts[e.idx()] += 1;
        }
        counts
    }

    /// The raw CSR arena: `(members, offsets, splits)` — block `k`'s members
    /// are `members[offsets[k]..offsets[k + 1]]` with the left/right boundary
    /// at `splits[k]`. This is the serialization view; the snapshot codec
    /// persists exactly these three arrays.
    pub fn raw_parts(&self) -> (&[EntityId], &[u32], &[u32]) {
        (&self.members, &self.offsets, &self.splits)
    }

    /// Reassembles a collection from its raw CSR arrays, rejecting parts
    /// that do not even describe valid slices. Returns the first breached
    /// invariant instead of panicking, so deserialization of untrusted bytes
    /// stays total.
    ///
    /// Only the *structural* invariants are checked here (offset monotonicity
    /// and bounds, split placement, Dirty blocks having no right side). Deep
    /// semantic checks — member ids in bounds, no duplicate members, no
    /// intra-source Clean-Clean blocks — are [`BlockCollection::validate`]'s
    /// job; run it on the result before trusting foreign data.
    pub fn try_from_raw_parts(
        kind: ErKind,
        num_entities: usize,
        members: Vec<EntityId>,
        offsets: Vec<u32>,
        splits: Vec<u32>,
    ) -> Result<Self, crate::sanitize::Violation> {
        let err = |invariant: &'static str, message: String| {
            Err(crate::sanitize::Violation { invariant, message })
        };
        if offsets.len() != splits.len() + 1 {
            return err(
                "arena-table-lengths",
                format!("{} offsets for {} splits (want splits + 1)", offsets.len(), splits.len()),
            );
        }
        if offsets.first() != Some(&0) {
            return err(
                "arena-offset-origin",
                format!("offsets[0] = {:?}, want 0", offsets.first()),
            );
        }
        if let Some(w) = offsets.windows(2).position(|w| w[0] > w[1]) {
            return err(
                "arena-offsets-descending",
                format!("offsets[{w}] = {} > offsets[{}] = {}", offsets[w], w + 1, offsets[w + 1]),
            );
        }
        let last = *offsets.last().unwrap_or(&0) as usize;
        if last != members.len() {
            return err(
                "arena-offset-coverage",
                format!("last offset {last} does not cover the {} members", members.len()),
            );
        }
        for (k, &split) in splits.iter().enumerate() {
            let (lo, hi) = (offsets[k], offsets[k + 1]);
            if split < lo || split > hi {
                return err(
                    "arena-split-out-of-block",
                    format!("block {k}: split {split} outside member range {lo}..{hi}"),
                );
            }
            if kind == ErKind::Dirty && split != hi {
                return err(
                    "arena-dirty-right-side",
                    format!("block {k}: Dirty block with split {split} < end {hi}"),
                );
            }
        }
        Ok(BlockCollection { kind, num_entities, members, offsets, splits })
    }
}

/// Streaming constructor for a [`BlockCollection`] arena: blocks are
/// appended one at a time (`begin` → `push_left`/`push_right` → `commit` or
/// `rollback`), so filtering and blocking methods write the arena directly
/// without ever materializing per-block `Vec`s.
#[derive(Debug)]
pub struct BlockCollectionBuilder {
    kind: ErKind,
    num_entities: usize,
    members: Vec<EntityId>,
    offsets: Vec<u32>,
    splits: Vec<u32>,
    /// Absolute left/right boundary of the open block; `None` while its
    /// left side is still growing.
    open_split: Option<u32>,
}

impl BlockCollectionBuilder {
    /// An empty builder for the given task.
    pub fn new(kind: ErKind, num_entities: usize) -> Self {
        BlockCollectionBuilder::with_capacity(kind, num_entities, 0, 0)
    }

    /// An empty builder with arena capacity reserved for `blocks` blocks
    /// totalling `assignments` members.
    pub fn with_capacity(
        kind: ErKind,
        num_entities: usize,
        blocks: usize,
        assignments: usize,
    ) -> Self {
        let mut offsets = Vec::with_capacity(blocks + 1);
        offsets.push(0u32);
        BlockCollectionBuilder {
            kind,
            num_entities,
            members: Vec::with_capacity(assignments),
            offsets,
            splits: Vec::with_capacity(blocks),
            open_split: None,
        }
    }

    /// The number of committed blocks so far.
    pub fn len(&self) -> usize {
        self.splits.len()
    }

    /// Whether no block has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }

    /// Opens a new block. Only one block may be open at a time.
    pub fn begin(&mut self) {
        self.open_split = None;
    }

    /// Appends an E₁ member (any member for Dirty ER) to the open block.
    /// Left members must precede right members.
    pub fn push_left(&mut self, e: EntityId) {
        debug_assert!(self.open_split.is_none(), "left member after a right member");
        self.members.push(e);
    }

    /// Appends an E₂ member to the open block.
    pub fn push_right(&mut self, e: EntityId) {
        if self.open_split.is_none() {
            self.open_split = Some(self.checked_len());
        }
        self.members.push(e);
    }

    /// Commits the open block to the arena.
    pub fn commit(&mut self) {
        let end = self.checked_len();
        self.splits.push(self.open_split.take().unwrap_or(end));
        self.offsets.push(end);
    }

    /// Discards the open block's members, leaving the arena as it was
    /// before [`BlockCollectionBuilder::begin`].
    pub fn rollback(&mut self) {
        let last = *self.offsets.last().unwrap_or(&0);
        self.members.truncate(last as usize);
        self.open_split = None;
    }

    /// The finished collection.
    pub fn finish(self) -> BlockCollection {
        BlockCollection {
            kind: self.kind,
            num_entities: self.num_entities,
            members: self.members,
            offsets: self.offsets,
            splits: self.splits,
        }
    }

    fn checked_len(&self) -> u32 {
        // The arena addresses members with u32 offsets (same budget as
        // EntityIndex); a collection beyond 4B assignments must fail loudly
        // rather than alias earlier blocks.
        assert!(
            u32::try_from(self.members.len()).is_ok(),
            "block arena exceeds u32 offset space ({} assignments)",
            self.members.len()
        );
        self.members.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    #[test]
    fn dirty_block_cardinality() {
        let b = Block::dirty(ids(&[0, 1, 2, 3]));
        assert_eq!(b.size(), 4);
        assert_eq!(b.cardinality(), 6);
        assert!(b.has_comparisons());
    }

    #[test]
    fn singleton_dirty_block_has_no_comparisons() {
        let b = Block::dirty(ids(&[5]));
        assert_eq!(b.cardinality(), 0);
        assert!(!b.has_comparisons());
    }

    #[test]
    fn clean_clean_block_cardinality() {
        let b = Block::clean_clean(ids(&[0, 1]), ids(&[7, 8, 9]));
        assert_eq!(b.size(), 5);
        assert_eq!(b.cardinality(), 6);
    }

    #[test]
    fn clean_clean_block_without_right_side() {
        let b = Block::clean_clean(ids(&[0, 1]), ids(&[]));
        // Constructed as clean-clean but with an empty right side it behaves
        // as a dirty block; blocking methods never build such blocks.
        assert_eq!(b.cardinality(), 1);
    }

    #[test]
    fn dirty_comparisons_are_canonical() {
        let b = Block::dirty(ids(&[3, 1, 2]));
        let mut pairs = Vec::new();
        b.for_each_comparison(|a, c| pairs.push((a.0, c.0)));
        assert_eq!(pairs, vec![(1, 3), (2, 3), (1, 2)]);
        assert!(pairs.iter().all(|&(a, c)| a < c));
    }

    #[test]
    fn clean_clean_comparisons_cross_only() {
        let b = Block::clean_clean(ids(&[0]), ids(&[5, 6]));
        let mut pairs = Vec::new();
        b.for_each_comparison(|a, c| pairs.push((a.0, c.0)));
        assert_eq!(pairs, vec![(0, 5), (0, 6)]);
    }

    #[test]
    fn remove_entity() {
        let mut b = Block::clean_clean(ids(&[0, 1]), ids(&[5]));
        assert!(b.remove(EntityId(1)));
        assert!(!b.remove(EntityId(1)));
        assert!(b.remove(EntityId(5)));
        assert_eq!(b.size(), 1);
    }

    fn sample_collection() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            6,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[3, 4, 5])),
            ],
        )
    }

    #[test]
    fn collection_statistics() {
        let c = sample_collection();
        assert_eq!(c.size(), 3);
        assert_eq!(c.total_comparisons(), 1 + 3 + 3);
        assert_eq!(c.total_assignments(), 8);
        assert!((c.blocks_per_entity() - 8.0 / 6.0).abs() < 1e-12);
        assert_eq!(c.placed_entities(), 6);
        assert_eq!(c.assignments_per_entity(), vec![2, 2, 1, 1, 1, 1]);
    }

    #[test]
    fn from_blocks_round_trips_views() {
        let blocks = vec![
            Block::clean_clean(ids(&[0, 2]), ids(&[5, 6])),
            Block::clean_clean(ids(&[1]), ids(&[7])),
        ];
        let c = BlockCollection::from_blocks(ErKind::CleanClean, 8, blocks.clone());
        assert_eq!(c.size(), 2);
        for (view, owned) in c.iter().zip(&blocks) {
            assert_eq!(view.to_block(), *owned);
            assert_eq!(view, owned.as_ref());
        }
        assert_eq!(c.block(0).left(), &ids(&[0, 2])[..]);
        assert_eq!(c.block(1).right(), &ids(&[7])[..]);
    }

    #[test]
    fn sort_ascending_cardinality() {
        // Built in descending order; the sort must reverse it stably.
        let mut c = BlockCollection::new(
            ErKind::Dirty,
            6,
            vec![
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[3, 4, 5])),
                Block::dirty(ids(&[0, 1])),
            ],
        );
        c.sort_by_cardinality_ascending();
        let cards: Vec<u64> = c.iter().map(|b| b.cardinality()).collect();
        assert_eq!(cards, vec![1, 3, 3]);
        // Stable: the two cardinality-3 blocks keep their relative order.
        assert_eq!(c.block(1).left()[0], EntityId(0));
        assert_eq!(c.block(2).left()[0], EntityId(3));
    }

    #[test]
    fn retain_compacts_the_arena_in_order() {
        let mut c = BlockCollection::new(
            ErKind::Dirty,
            8,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[2, 3, 4])),
                Block::dirty(ids(&[5, 6])),
                Block::dirty(ids(&[0, 7])),
            ],
        );
        c.retain(|b| b.size() == 2);
        assert_eq!(c.size(), 3);
        assert_eq!(c.block(0).left(), &ids(&[0, 1])[..]);
        assert_eq!(c.block(1).left(), &ids(&[5, 6])[..]);
        assert_eq!(c.block(2).left(), &ids(&[0, 7])[..]);
        assert_eq!(c.total_assignments(), 6);
        // Retaining nothing empties the collection.
        c.retain(|_| false);
        assert!(c.is_empty());
        assert_eq!(c.total_assignments(), 0);
    }

    #[test]
    fn retain_preserves_clean_clean_splits() {
        let mut c = BlockCollection::new(
            ErKind::CleanClean,
            10,
            vec![
                Block::clean_clean(ids(&[0]), ids(&[5, 6])),
                Block::clean_clean(ids(&[1, 2]), ids(&[7])),
                Block::clean_clean(ids(&[3]), ids(&[8, 9])),
            ],
        );
        c.retain(|b| b.left().len() == 1);
        assert_eq!(c.size(), 2);
        assert_eq!(c.block(0).right(), &ids(&[5, 6])[..]);
        assert_eq!(c.block(1).left(), &ids(&[3])[..]);
        assert_eq!(c.block(1).right(), &ids(&[8, 9])[..]);
    }

    #[test]
    fn builder_commit_and_rollback() {
        let mut b = BlockCollectionBuilder::new(ErKind::CleanClean, 10);
        b.begin();
        b.push_left(EntityId(0));
        b.push_right(EntityId(5));
        b.commit();
        // A rolled-back block leaves no trace.
        b.begin();
        b.push_left(EntityId(1));
        b.push_left(EntityId(2));
        b.rollback();
        b.begin();
        b.push_left(EntityId(3));
        b.push_right(EntityId(6));
        b.push_right(EntityId(7));
        b.commit();
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        let c = b.finish();
        assert_eq!(c.size(), 2);
        assert_eq!(c.block(0).left(), &ids(&[0])[..]);
        assert_eq!(c.block(0).right(), &ids(&[5])[..]);
        assert_eq!(c.block(1).left(), &ids(&[3])[..]);
        assert_eq!(c.block(1).right(), &ids(&[6, 7])[..]);
        assert_eq!(c.total_assignments(), 5);
    }

    #[test]
    fn builder_dirty_blocks_have_no_split() {
        let mut b = BlockCollectionBuilder::new(ErKind::Dirty, 4);
        b.begin();
        b.push_left(EntityId(0));
        b.push_left(EntityId(1));
        b.commit();
        let c = b.finish();
        assert_eq!(c.block(0).right(), &[] as &[EntityId]);
        assert_eq!(c.block(0).cardinality(), 1);
    }

    #[test]
    fn for_each_comparison_spans_blocks() {
        let c = sample_collection();
        let mut n = 0u64;
        c.for_each_comparison(|_, _| n += 1);
        assert_eq!(n, c.total_comparisons());
    }

    #[test]
    fn empty_collection_statistics() {
        let c = BlockCollection::new(ErKind::Dirty, 0, vec![]);
        assert!(c.is_empty());
        assert_eq!(c.blocks_per_entity(), 0.0);
        assert_eq!(c.placed_entities(), 0);
    }

    #[test]
    fn raw_parts_roundtrip_through_try_from() {
        let c = BlockCollection::new(
            ErKind::CleanClean,
            8,
            vec![
                Block::clean_clean(ids(&[0, 2]), ids(&[5, 6])),
                Block::clean_clean(ids(&[1]), ids(&[7])),
            ],
        );
        let (members, offsets, splits) = c.raw_parts();
        let rebuilt = BlockCollection::try_from_raw_parts(
            c.kind(),
            c.num_entities(),
            members.to_vec(),
            offsets.to_vec(),
            splits.to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.size(), c.size());
        for (a, b) in rebuilt.iter().zip(c.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn try_from_raw_parts_rejects_malformed_tables() {
        let e = |r: Result<BlockCollection, crate::sanitize::Violation>| r.unwrap_err().invariant;
        // offsets/splits length mismatch.
        assert_eq!(
            e(BlockCollection::try_from_raw_parts(ErKind::Dirty, 2, vec![], vec![0], vec![0])),
            "arena-table-lengths"
        );
        // offsets must start at 0.
        assert_eq!(
            e(BlockCollection::try_from_raw_parts(
                ErKind::Dirty,
                2,
                ids(&[0, 1]),
                vec![1, 2],
                vec![2]
            )),
            "arena-offset-origin"
        );
        // offsets must ascend.
        assert_eq!(
            e(BlockCollection::try_from_raw_parts(
                ErKind::Dirty,
                2,
                ids(&[0, 1]),
                vec![0, 2, 1],
                vec![2, 1]
            )),
            "arena-offsets-descending"
        );
        // Last offset must cover the member pool.
        assert_eq!(
            e(BlockCollection::try_from_raw_parts(
                ErKind::Dirty,
                2,
                ids(&[0, 1]),
                vec![0, 1],
                vec![1]
            )),
            "arena-offset-coverage"
        );
        // Split outside the block's member range.
        assert_eq!(
            e(BlockCollection::try_from_raw_parts(
                ErKind::CleanClean,
                2,
                ids(&[0, 1]),
                vec![0, 2],
                vec![3]
            )),
            "arena-split-out-of-block"
        );
        // A Dirty block must not have a right side.
        assert_eq!(
            e(BlockCollection::try_from_raw_parts(
                ErKind::Dirty,
                2,
                ids(&[0, 1]),
                vec![0, 2],
                vec![1]
            )),
            "arena-dirty-right-side"
        );
    }

    #[test]
    fn try_from_raw_parts_accepts_empty_collection() {
        let c =
            BlockCollection::try_from_raw_parts(ErKind::Dirty, 0, vec![], vec![0], vec![]).unwrap();
        assert!(c.is_empty());
    }
}
