//! Ground truth: the set of duplicate pairs `D(E)`.

use crate::comparisons::{Comparison, ComparisonSet};
use crate::ids::EntityId;

/// The set of all duplicate pairs in the input entity collection.
///
/// For Clean-Clean ER every duplicate pair crosses the two collections; for
/// the derived Dirty ER tasks the same pairs are interpreted within the
/// merged collection (the paper's D·D datasets have exactly the |D(E)| of
/// their Clean-Clean counterparts).
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    set: ComparisonSet,
    pairs: Vec<Comparison>,
}

impl GroundTruth {
    /// Builds the ground truth from duplicate pairs (order-insensitive;
    /// repeated pairs are deduplicated).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (EntityId, EntityId)>) -> Self {
        let mut set = ComparisonSet::new();
        let mut canon = Vec::new();
        for (a, b) in pairs {
            if set.insert(a, b) {
                canon.push(Comparison::new(a, b));
            }
        }
        GroundTruth { set, pairs: canon }
    }

    /// `|D(E)|`: the number of existing duplicate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no duplicates exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether `(a, b)` are duplicates (order-insensitive).
    #[inline]
    pub fn are_duplicates(&self, a: EntityId, b: EntityId) -> bool {
        a != b && self.set.contains(a, b)
    }

    /// The duplicate pairs, in insertion order.
    pub fn pairs(&self) -> &[Comparison] {
        &self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedupes_and_canonicalizes() {
        let gt = GroundTruth::from_pairs(vec![
            (EntityId(3), EntityId(1)),
            (EntityId(1), EntityId(3)),
            (EntityId(2), EntityId(4)),
        ]);
        assert_eq!(gt.len(), 2);
        assert!(gt.are_duplicates(EntityId(1), EntityId(3)));
        assert!(gt.are_duplicates(EntityId(4), EntityId(2)));
        assert!(!gt.are_duplicates(EntityId(1), EntityId(2)));
        assert!(!gt.are_duplicates(EntityId(1), EntityId(1)));
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::from_pairs(std::iter::empty());
        assert!(gt.is_empty());
        assert_eq!(gt.pairs().len(), 0);
    }
}
