//! Token extraction and interning.
//!
//! Token Blocking (§1 of the paper) "splits the attribute values of every
//! entity profile into tokens based on whitespace". We additionally lowercase
//! and strip punctuation so that `Car-Vendor` and `car vendor` co-occur — the
//! same normalization the reference implementation applies.
//!
//! Tokens are interned to dense `u32` ids through [`Interner`]; every
//! downstream structure (blocks, token sets for Jaccard matching) works on
//! ids, never on strings.

use crate::fxhash::FxHashMap;

/// Splits a value into normalized whitespace tokens.
///
/// Normalization: Unicode-aware lowercasing; any non-alphanumeric character
/// is treated as whitespace. Empty tokens are dropped.
///
/// ```
/// let toks: Vec<String> = er_model::tokenize::tokens("Jack Lloyd-Miller, Jr.").collect();
/// assert_eq!(toks, ["jack", "lloyd", "miller", "jr"]);
/// ```
pub fn tokens(value: &str) -> impl Iterator<Item = String> + '_ {
    value.split(|c: char| !c.is_alphanumeric()).filter(|t| !t.is_empty()).map(|t| t.to_lowercase())
}

/// Character q-grams of a normalized token stream, for Q-grams Blocking.
///
/// Tokens shorter than `q` are emitted whole (the standard convention, so
/// that short tokens are not lost).
pub fn qgrams(value: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q must be positive");
    let mut out = Vec::new();
    for tok in tokens(value) {
        let chars: Vec<char> = tok.chars().collect();
        if chars.len() <= q {
            out.push(tok);
        } else {
            for w in chars.windows(q) {
                out.push(w.iter().collect());
            }
        }
    }
    out
}

/// Suffixes of each token with minimum length `min_len`, for Suffix-Arrays
/// Blocking (Aizawa & Oyama, 2005).
pub fn suffixes(value: &str, min_len: usize) -> Vec<String> {
    let mut out = Vec::new();
    for tok in tokens(value) {
        let chars: Vec<char> = tok.chars().collect();
        if chars.len() < min_len {
            continue;
        }
        for start in 0..=(chars.len() - min_len) {
            out.push(chars[start..].iter().collect());
        }
    }
    out
}

/// A string-to-dense-id interner.
///
/// Ids are assigned in first-seen order, so interning is deterministic for a
/// fixed input order — a requirement for reproducible experiments.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    ids: FxHashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `s`, allocating one if unseen.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(s.to_owned(), id);
        self.strings.push(s.to_owned());
        id
    }

    /// Returns the id for `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// The string for an id.
    ///
    /// # Panics
    /// If `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// The deduplicated, sorted token-id set of a profile's values — the
/// representation used by the Jaccard entity matcher.
pub fn token_id_set(
    values: impl Iterator<Item = impl AsRef<str>>,
    interner: &mut Interner,
) -> Vec<u32> {
    let mut ids: Vec<u32> = Vec::new();
    for v in values {
        for t in tokens(v.as_ref()) {
            ids.push(interner.intern(&t));
        }
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_normalize_case_and_punctuation() {
        let toks: Vec<String> = tokens("Car-Vendor/Seller  (used)").collect();
        assert_eq!(toks, ["car", "vendor", "seller", "used"]);
    }

    #[test]
    fn tokens_keep_digits() {
        let toks: Vec<String> = tokens("IMDB id 0123").collect();
        assert_eq!(toks, ["imdb", "id", "0123"]);
    }

    #[test]
    fn empty_value_yields_no_tokens() {
        assert_eq!(tokens("  --- ").count(), 0);
    }

    #[test]
    fn qgrams_of_long_token() {
        assert_eq!(qgrams("seller", 3), ["sel", "ell", "lle", "ler"]);
    }

    #[test]
    fn qgrams_short_token_emitted_whole() {
        assert_eq!(qgrams("car", 4), ["car"]);
        assert_eq!(qgrams("car", 3), ["car"]);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn qgrams_zero_panics() {
        qgrams("x", 0);
    }

    #[test]
    fn suffixes_respect_min_len() {
        assert_eq!(suffixes("trader", 4), ["trader", "rader", "ader"]);
        assert!(suffixes("car", 4).is_empty());
    }

    #[test]
    fn interner_assigns_dense_ids() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(1), "b");
        assert_eq!(i.get("b"), Some(1));
        assert_eq!(i.get("c"), None);
    }

    #[test]
    fn token_id_set_is_sorted_dedup() {
        let mut i = Interner::new();
        let set = token_id_set(["jack miller", "miller car"].iter(), &mut i);
        assert_eq!(set.len(), 3);
        assert!(set.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unicode_tokens() {
        let toks: Vec<String> = tokens("Müller Straße").collect();
        assert_eq!(toks, ["müller", "straße"]);
    }
}
