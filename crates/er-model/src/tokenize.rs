//! Token extraction and interning.
//!
//! Token Blocking (§1 of the paper) "splits the attribute values of every
//! entity profile into tokens based on whitespace". We additionally lowercase
//! and strip punctuation so that `Car-Vendor` and `car vendor` co-occur — the
//! same normalization the reference implementation applies.
//!
//! Tokens are interned to dense `u32` ids through [`Interner`]; every
//! downstream structure (blocks, token sets for Jaccard matching) works on
//! ids, never on strings.

use crate::fxhash::FxHashMap;

/// Splits a value into normalized whitespace tokens.
///
/// Normalization: Unicode-aware lowercasing; any non-alphanumeric character
/// is treated as whitespace. Empty tokens are dropped.
///
/// ```
/// let toks: Vec<String> = er_model::tokenize::tokens("Jack Lloyd-Miller, Jr.").collect();
/// assert_eq!(toks, ["jack", "lloyd", "miller", "jr"]);
/// ```
pub fn tokens(value: &str) -> impl Iterator<Item = String> + '_ {
    raw_tokens(value).map(|t| t.to_lowercase())
}

/// The raw (not yet lowercased) token slices of a value — the zero-copy
/// front half of [`tokens`]. The blocking front-ends iterate these and
/// lowercase into a reusable [`KeyScratch`] buffer instead of allocating a
/// `String` per token.
pub fn raw_tokens(value: &str) -> impl Iterator<Item = &str> {
    value.split(|c: char| !c.is_alphanumeric()).filter(|t| !t.is_empty())
}

/// Appends `raw` to `dst` lowercased.
///
/// ASCII text takes a byte-wise fast path; anything else falls back to full
/// `str::to_lowercase`, so the result is always byte-identical to
/// `dst.push_str(&raw.to_lowercase())` (including the Greek final-sigma
/// special case, which is position-dependent and cannot be done per char).
pub fn push_lowercase(dst: &mut String, raw: &str) {
    if raw.is_ascii() {
        // Safe path without unsafe: ASCII bytes lowercase to ASCII bytes.
        for b in raw.bytes() {
            dst.push(b.to_ascii_lowercase() as char);
        }
    } else {
        dst.push_str(&raw.to_lowercase());
    }
}

/// Character q-grams of a normalized token stream, for Q-grams Blocking.
///
/// Tokens shorter than `q` are emitted whole (the standard convention, so
/// that short tokens are not lost).
pub fn qgrams(value: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q must be positive");
    let mut out = Vec::new();
    for tok in tokens(value) {
        let chars: Vec<char> = tok.chars().collect();
        if chars.len() <= q {
            out.push(tok);
        } else {
            for w in chars.windows(q) {
                out.push(w.iter().collect());
            }
        }
    }
    out
}

/// Suffixes of each token with minimum length `min_len`, for Suffix-Arrays
/// Blocking (Aizawa & Oyama, 2005).
pub fn suffixes(value: &str, min_len: usize) -> Vec<String> {
    let mut out = Vec::new();
    for tok in tokens(value) {
        let chars: Vec<char> = tok.chars().collect();
        if chars.len() < min_len {
            continue;
        }
        for start in 0..=(chars.len() - min_len) {
            out.push(chars[start..].iter().collect());
        }
    }
    out
}

/// A string-to-dense-id interner.
///
/// Ids are assigned in first-seen order, so interning is deterministic for a
/// fixed input order — a requirement for reproducible experiments.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    ids: FxHashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `s`, allocating one if unseen.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.ids.insert(s.to_owned(), id);
        self.strings.push(s.to_owned());
        id
    }

    /// Returns the id for `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// The string for an id.
    ///
    /// # Panics
    /// If `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A key interner specialised for the blocking front-end: key → dense `u32`
/// in first-seen order, holding exactly one owned copy of each key.
///
/// Unlike [`Interner`] there is no reverse (`id → str`) table — the blocking
/// builders only ever need the forward direction, so each new key costs one
/// allocation instead of two and half the resident strings.
#[derive(Debug, Default)]
pub struct TokenInterner {
    ids: FxHashMap<String, u32>,
}

impl TokenInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `s`, allocating one if unseen.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(s.to_owned(), id);
        id
    }

    /// Number of distinct interned keys.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Consumes the interner into its `(key, id)` entries, sorted by id —
    /// i.e. first-seen key order.
    ///
    /// `FxHashMap` iteration order is nondeterministic, so this is the only
    /// reproducible way to enumerate the key table (the snapshot encoder
    /// depends on it). Ids are dense, so entry `i` always carries id `i`.
    /// The owned key strings are moved out, preserving the
    /// one-allocation-per-key design.
    pub fn into_entries(self) -> Vec<(String, u32)> {
        let mut entries: Vec<(String, u32)> = self.ids.into_iter().collect();
        entries.sort_unstable_by_key(|&(_, id)| id);
        entries
    }
}

/// Reusable per-profile scratch for assembling blocking keys without per-key
/// allocations: one backing buffer holds the text of every key, and each key
/// is a `(start, end)` span into it.
///
/// The span representation also lets q-gram windows *alias* their token's
/// bytes ([`KeyScratch::push_range`]) instead of copying them. Spans compare
/// byte-wise, exactly like `String`, so [`KeyScratch::sort_dedup`] yields
/// the same key order the old `Vec<String>` sort did.
#[derive(Debug, Default)]
pub struct KeyScratch {
    buf: String,
    spans: Vec<(usize, usize)>,
}

impl KeyScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears keys and backing text, retaining both allocations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.spans.clear();
    }

    /// Starts a new key at the current end of the buffer; pass the returned
    /// marker to [`KeyScratch::commit`].
    pub fn begin(&self) -> usize {
        self.buf.len()
    }

    /// Appends literal text to the key under construction.
    pub fn push_str(&mut self, s: &str) {
        self.buf.push_str(s);
    }

    /// Appends `raw` lowercased (see [`push_lowercase`]).
    pub fn push_lowercase(&mut self, raw: &str) {
        push_lowercase(&mut self.buf, raw);
    }

    /// Appends any `Display` value (numeric cluster prefixes and the like).
    pub fn push_display(&mut self, v: impl std::fmt::Display) {
        use std::fmt::Write;
        let _ = write!(self.buf, "{v}");
    }

    /// Commits the key begun at `start`. Keys that received no text are
    /// dropped, mirroring the `filter(|k| !k.is_empty())` of the old path.
    pub fn commit(&mut self, start: usize) {
        if self.buf.len() > start {
            self.spans.push((start, self.buf.len()));
        }
    }

    /// Records `[start, end)` of the backing buffer as an additional key.
    /// Q-gram windows use this to share their token's bytes.
    pub fn push_range(&mut self, start: usize, end: usize) {
        debug_assert!(start < end && end <= self.buf.len());
        self.spans.push((start, end));
    }

    /// The current end of the backing buffer (for char-boundary scans).
    pub fn end(&self) -> usize {
        self.buf.len()
    }

    /// The backing buffer.
    pub fn buf(&self) -> &str {
        &self.buf
    }

    /// Sorts the keys lexicographically (byte order — identical to `String`
    /// ordering) and drops duplicates.
    pub fn sort_dedup(&mut self) {
        let buf = &self.buf;
        self.spans.sort_unstable_by(|&(a0, a1), &(b0, b1)| buf[a0..a1].cmp(&buf[b0..b1]));
        self.spans.dedup_by(|&mut (a0, a1), &mut (b0, b1)| buf[a0..a1] == buf[b0..b1]);
    }

    /// Iterates the committed keys in their current order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.spans.iter().map(move |&(s, e)| &self.buf[s..e])
    }

    /// Number of committed keys.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no key has been committed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// The deduplicated, sorted token-id set of a profile's values — the
/// representation used by the Jaccard entity matcher.
pub fn token_id_set(
    values: impl Iterator<Item = impl AsRef<str>>,
    interner: &mut Interner,
) -> Vec<u32> {
    let mut ids: Vec<u32> = Vec::new();
    for v in values {
        for t in tokens(v.as_ref()) {
            ids.push(interner.intern(&t));
        }
    }
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_normalize_case_and_punctuation() {
        let toks: Vec<String> = tokens("Car-Vendor/Seller  (used)").collect();
        assert_eq!(toks, ["car", "vendor", "seller", "used"]);
    }

    #[test]
    fn tokens_keep_digits() {
        let toks: Vec<String> = tokens("IMDB id 0123").collect();
        assert_eq!(toks, ["imdb", "id", "0123"]);
    }

    #[test]
    fn empty_value_yields_no_tokens() {
        assert_eq!(tokens("  --- ").count(), 0);
    }

    #[test]
    fn qgrams_of_long_token() {
        assert_eq!(qgrams("seller", 3), ["sel", "ell", "lle", "ler"]);
    }

    #[test]
    fn qgrams_short_token_emitted_whole() {
        assert_eq!(qgrams("car", 4), ["car"]);
        assert_eq!(qgrams("car", 3), ["car"]);
    }

    #[test]
    #[should_panic(expected = "q must be positive")]
    fn qgrams_zero_panics() {
        qgrams("x", 0);
    }

    #[test]
    fn suffixes_respect_min_len() {
        assert_eq!(suffixes("trader", 4), ["trader", "rader", "ader"]);
        assert!(suffixes("car", 4).is_empty());
    }

    #[test]
    fn interner_assigns_dense_ids() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(1), "b");
        assert_eq!(i.get("b"), Some(1));
        assert_eq!(i.get("c"), None);
    }

    #[test]
    fn token_id_set_is_sorted_dedup() {
        let mut i = Interner::new();
        let set = token_id_set(["jack miller", "miller car"].iter(), &mut i);
        assert_eq!(set.len(), 3);
        assert!(set.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unicode_tokens() {
        let toks: Vec<String> = tokens("Müller Straße").collect();
        assert_eq!(toks, ["müller", "straße"]);
    }

    #[test]
    fn push_lowercase_matches_to_lowercase() {
        for raw in ["Jack", "MILLER-42", "Müller", "ΣΟΦΟΣ", "straße", "İstanbul"] {
            let mut buf = String::new();
            push_lowercase(&mut buf, raw);
            assert_eq!(buf, raw.to_lowercase(), "raw={raw}");
        }
    }

    #[test]
    fn token_interner_assigns_dense_first_seen_ids() {
        let mut i = TokenInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern("b"), 0);
        assert_eq!(i.intern("a"), 1);
        assert_eq!(i.intern("b"), 0);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn token_interner_entries_are_sorted_by_id() {
        let mut i = TokenInterner::new();
        for key in ["zeta", "alpha", "mid", "alpha", "zeta"] {
            i.intern(key);
        }
        let entries = i.into_entries();
        assert_eq!(
            entries,
            vec![("zeta".to_string(), 0), ("alpha".to_string(), 1), ("mid".to_string(), 2)]
        );
        // Dense ids: entry i carries id i.
        assert!(entries.iter().enumerate().all(|(i, &(_, id))| id as usize == i));
    }

    #[test]
    fn token_interner_entries_of_empty_interner() {
        assert!(TokenInterner::new().into_entries().is_empty());
    }

    #[test]
    fn token_interner_entries_are_deterministic() {
        // Regardless of FxHashMap iteration order, two identical insert
        // sequences must export identical entry lists.
        let build = || {
            let mut i = TokenInterner::new();
            for n in 0..512u32 {
                i.intern(&format!("key-{}", n * 7919 % 311));
            }
            i.into_entries()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn key_scratch_sorts_and_dedups_like_strings() {
        let mut s = KeyScratch::new();
        for raw in ["miller", "Jack", "miller", "42"] {
            let start = s.begin();
            s.push_lowercase(raw);
            s.commit(start);
        }
        s.sort_dedup();
        let keys: Vec<&str> = s.iter().collect();
        assert_eq!(keys, ["42", "jack", "miller"]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn key_scratch_drops_empty_keys_and_supports_ranges() {
        let mut s = KeyScratch::new();
        let start = s.begin();
        s.commit(start); // nothing appended -> dropped
        assert!(s.is_empty());
        let start = s.begin();
        s.push_str("seller");
        s.commit(start);
        // Alias a window of "seller" as its own key.
        s.push_range(start, start + 3);
        s.sort_dedup();
        let keys: Vec<&str> = s.iter().collect();
        assert_eq!(keys, ["sel", "seller"]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.end(), 0);
        assert_eq!(s.buf(), "");
    }

    #[test]
    fn key_scratch_push_display_builds_prefixed_keys() {
        let mut s = KeyScratch::new();
        let start = s.begin();
        s.push_display(7usize);
        s.push_str("\u{1}");
        s.push_lowercase("Green");
        s.commit(start);
        assert_eq!(s.iter().next(), Some("7\u{1}green"));
    }
}
