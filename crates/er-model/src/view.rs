//! Borrowed `u32` sequences over heterogeneous backing storage.
//!
//! The zero-copy snapshot path serves queries straight out of one loaded
//! byte buffer: the CSR member pool, the offset/split tables and the flat
//! entity-index postings all stay little-endian bytes on the serving path.
//! [`U32s`] is the common currency that lets the graph traversals consume a
//! native `&[u32]`, a `&[EntityId]` arena slice, or a packed `&[u8]` section
//! through one interface — without a decode pass and without `unsafe`
//! reinterpretation (the byte-backed variant reads each element through
//! `u32::from_le_bytes` on a 4-byte chunk).
//!
//! The accessors are `#[inline]` and [`U32s::for_each`] resolves the
//! variant *outside* its element loop, so the byte-backed hot paths compile
//! to the same shape as a slice walk plus a fixed-width load.

use crate::ids::EntityId;

/// A borrowed sequence of `u32` values over one of three storages.
#[derive(Debug, Clone, Copy)]
pub enum U32s<'a> {
    /// A native `u32` slice (owned snapshot storage, scratch tables).
    Native(&'a [u32]),
    /// An [`EntityId`] arena slice (the in-memory block member pool).
    Ids(&'a [EntityId]),
    /// Little-endian packed bytes; the length must be a multiple of 4.
    Le(&'a [u8]),
}

impl<'a> U32s<'a> {
    /// An empty sequence.
    pub const EMPTY: U32s<'static> = U32s::Native(&[]);

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            U32s::Native(s) => s.len(),
            U32s::Ids(s) => s.len(),
            U32s::Le(b) => b.len() / 4,
        }
    }

    /// Whether the sequence has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element `i`.
    ///
    /// # Panics
    ///
    /// If `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            U32s::Native(s) => s[i],
            U32s::Ids(s) => s[i].0,
            U32s::Le(b) => {
                let mut w = [0u8; 4];
                w.copy_from_slice(&b[i * 4..i * 4 + 4]);
                u32::from_le_bytes(w)
            }
        }
    }

    /// The last element, if any.
    #[inline]
    pub fn last(&self) -> Option<u32> {
        let n = self.len();
        if n == 0 {
            None
        } else {
            Some(self.get(n - 1))
        }
    }

    /// The sub-sequence covering elements `start..end`.
    ///
    /// # Panics
    ///
    /// If `start > end` or `end > self.len()`.
    #[inline]
    pub fn slice(&self, start: usize, end: usize) -> U32s<'a> {
        match self {
            U32s::Native(s) => U32s::Native(&s[start..end]),
            U32s::Ids(s) => U32s::Ids(&s[start..end]),
            U32s::Le(b) => U32s::Le(&b[start * 4..end * 4]),
        }
    }

    /// Calls `f` on every element in order, resolving the storage variant
    /// once before the loop (the hot-path walk).
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        match self {
            U32s::Native(s) => {
                for &x in *s {
                    f(x);
                }
            }
            U32s::Ids(s) => {
                for e in *s {
                    f(e.0);
                }
            }
            U32s::Le(b) => {
                for c in b.chunks_exact(4) {
                    f(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
                }
            }
        }
    }

    /// `true` iff the sequence is strictly ascending with every value in
    /// `[min, max)`. Empty sequences qualify vacuously.
    ///
    /// Because the run is strictly ascending, the range check reduces to
    /// `first >= min` and `last < max` — the walk itself only compares
    /// neighbours, which keeps this the cheapest full-validation primitive
    /// for snapshot loading. The byte-backed variant walks the sequence and
    /// a one-element-shifted copy of itself in lockstep, accumulating a
    /// descent count and a max with no loop-carried scalar dependency, so
    /// the compiler can turn both into SIMD reductions instead of an
    /// early-exit compare chain.
    #[inline]
    pub fn is_strict_run(&self, min: u32, max: u32) -> bool {
        match self {
            U32s::Native(s) => strict_run(s.iter().copied(), min, max),
            U32s::Ids(s) => strict_run(s.iter().map(|e| e.0), min, max),
            U32s::Le(b) => {
                let le4 = |c: &[u8]| u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                if b.len() < 4 {
                    return true;
                }
                let first = le4(&b[..4]);
                if first < min {
                    return false;
                }
                let mut descents = 0u32;
                let mut top = first;
                for (a, c) in b[..b.len() - 4].chunks_exact(4).zip(b[4..].chunks_exact(4)) {
                    let v = le4(c);
                    descents += (v <= le4(a)) as u32;
                    top = top.max(v);
                }
                // With no descents the max IS the last element.
                descents == 0 && top < max
            }
        }
    }

    /// Iterator over the elements (for cold paths; hot loops should prefer
    /// [`U32s::for_each`]).
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        let this = *self;
        (0..this.len()).map(move |i| this.get(i))
    }

    /// Materializes the sequence as an owned vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|x| out.push(x));
        out
    }

    /// The index of the first element `>= probe`, assuming the sequence is
    /// sorted ascending (`partition_point` over any storage variant).
    pub fn lower_bound(&self, probe: u32) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.get(mid) < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Shared walk behind [`U32s::is_strict_run`], monomorphized per variant.
#[inline]
fn strict_run(mut it: impl Iterator<Item = u32>, min: u32, max: u32) -> bool {
    let Some(first) = it.next() else {
        return true;
    };
    if first < min {
        return false;
    }
    let mut prev = first;
    for cur in it {
        if cur <= prev {
            return false;
        }
        prev = cur;
    }
    prev < max
}

impl<'a> From<&'a [u32]> for U32s<'a> {
    fn from(s: &'a [u32]) -> Self {
        U32s::Native(s)
    }
}

impl<'a> From<&'a [EntityId]> for U32s<'a> {
    fn from(s: &'a [EntityId]) -> Self {
        U32s::Ids(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le_bytes(values: &[u32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * 4);
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn all_variants_agree_on_every_accessor() {
        let values = [7u32, 0, u32::MAX, 41, 42, 1_000_000];
        let ids: Vec<EntityId> = values.iter().copied().map(EntityId).collect();
        let bytes = le_bytes(&values);
        for view in [U32s::Native(&values), U32s::Ids(&ids), U32s::Le(&bytes)] {
            assert_eq!(view.len(), 6);
            assert!(!view.is_empty());
            assert_eq!(view.to_vec(), values);
            assert_eq!(view.iter().collect::<Vec<u32>>(), values);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(view.get(i), v);
            }
            assert_eq!(view.last(), Some(1_000_000));
            assert_eq!(view.slice(2, 5).to_vec(), &values[2..5]);
            assert_eq!(view.slice(3, 3).len(), 0);
            let mut walked = Vec::new();
            view.for_each(|x| walked.push(x));
            assert_eq!(walked, values);
        }
    }

    #[test]
    fn empty_views() {
        let bytes: &[u8] = &[];
        for view in [U32s::EMPTY, U32s::Le(bytes)] {
            assert!(view.is_empty());
            assert_eq!(view.len(), 0);
            assert_eq!(view.last(), None);
            assert_eq!(view.to_vec(), Vec::<u32>::new());
        }
    }

    #[test]
    fn strict_run_checks_order_and_range_on_every_variant() {
        let cases: &[(&[u32], u32, u32, bool)] = &[
            (&[], 0, 0, true),             // empty is vacuously valid
            (&[3, 5, 9], 3, 10, true),     // tight bounds
            (&[3, 5, 9], 4, 10, false),    // first below min
            (&[3, 5, 9], 0, 9, false),     // last at max (exclusive)
            (&[3, 5, 5, 9], 0, 10, false), // not strictly ascending
            (&[3, 5, 4, 9], 0, 10, false), // descent mid-run
            (&[7], 7, 8, true),            // singleton
            (&[0, u32::MAX - 1], 0, u32::MAX, true),
        ];
        for &(values, min, max, expect) in cases {
            let ids: Vec<EntityId> = values.iter().copied().map(EntityId).collect();
            let bytes = le_bytes(values);
            for view in [U32s::Native(values), U32s::Ids(&ids), U32s::Le(&bytes)] {
                assert_eq!(view.is_strict_run(min, max), expect, "{values:?} in [{min}, {max})");
            }
        }
    }

    #[test]
    fn lower_bound_is_partition_point() {
        let sorted = [2u32, 4, 4, 9, 20];
        let bytes = le_bytes(&sorted);
        for view in [U32s::Native(&sorted), U32s::Le(&bytes)] {
            for probe in 0..25u32 {
                assert_eq!(
                    view.lower_bound(probe),
                    sorted.partition_point(|&x| x < probe),
                    "probe {probe}"
                );
            }
        }
    }
}
