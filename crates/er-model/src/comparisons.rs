//! Canonical comparisons and distinct-pair sets.

use crate::fxhash::FxHashSet;
use crate::ids::EntityId;

/// A canonical (unordered) pair of entity ids: `a < b` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Comparison {
    /// The smaller entity id.
    pub a: EntityId,
    /// The larger entity id.
    pub b: EntityId,
}

impl Comparison {
    /// Creates a canonical comparison from two distinct ids, in any order.
    ///
    /// # Panics
    /// If `x == y` — a profile is never compared with itself.
    #[inline]
    pub fn new(x: EntityId, y: EntityId) -> Self {
        assert_ne!(x, y, "self-comparison {x}");
        if x < y {
            Comparison { a: x, b: y }
        } else {
            Comparison { a: y, b: x }
        }
    }

    /// Packs the pair into a single `u64` key (`a` in the high 32 bits).
    #[inline]
    pub fn key(self) -> u64 {
        ((self.a.0 as u64) << 32) | self.b.0 as u64
    }

    /// Reconstructs a comparison from a packed key.
    #[inline]
    pub fn from_key(key: u64) -> Self {
        Comparison { a: EntityId((key >> 32) as u32), b: EntityId(key as u32) }
    }
}

/// A set of distinct comparisons, stored as packed keys.
#[derive(Debug, Default, Clone)]
pub struct ComparisonSet {
    set: FxHashSet<u64>,
}

impl ComparisonSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set sized for `capacity` pairs.
    pub fn with_capacity(capacity: usize) -> Self {
        ComparisonSet { set: FxHashSet::with_capacity_and_hasher(capacity, Default::default()) }
    }

    /// Inserts the pair `(x, y)`; returns whether it was new.
    #[inline]
    pub fn insert(&mut self, x: EntityId, y: EntityId) -> bool {
        self.set.insert(Comparison::new(x, y).key())
    }

    /// Whether the pair `(x, y)` is present (order-insensitive).
    #[inline]
    pub fn contains(&self, x: EntityId, y: EntityId) -> bool {
        self.set.contains(&Comparison::new(x, y).key())
    }

    /// Number of distinct pairs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterator over the stored comparisons (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = Comparison> + '_ {
        // lint:allow(unordered-iteration) documented arbitrary-order set
        // view; ordering is the caller's contract, not this accessor's.
        self.set.iter().map(|&k| Comparison::from_key(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_ordering() {
        let c = Comparison::new(EntityId(9), EntityId(2));
        assert_eq!(c.a, EntityId(2));
        assert_eq!(c.b, EntityId(9));
        assert_eq!(c, Comparison::new(EntityId(2), EntityId(9)));
    }

    #[test]
    #[should_panic(expected = "self-comparison")]
    fn self_comparison_panics() {
        Comparison::new(EntityId(1), EntityId(1));
    }

    #[test]
    fn key_roundtrip() {
        let c = Comparison::new(EntityId(123), EntityId(u32::MAX - 1));
        assert_eq!(Comparison::from_key(c.key()), c);
    }

    #[test]
    fn set_dedupes_order_insensitively() {
        let mut s = ComparisonSet::new();
        assert!(s.insert(EntityId(1), EntityId(2)));
        assert!(!s.insert(EntityId(2), EntityId(1)));
        assert!(s.contains(EntityId(2), EntityId(1)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn iter_returns_all_pairs() {
        let mut s = ComparisonSet::with_capacity(4);
        s.insert(EntityId(1), EntityId(2));
        s.insert(EntityId(3), EntityId(4));
        let mut got: Vec<(u32, u32)> = s.iter().map(|c| (c.a.0, c.b.0)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 2), (3, 4)]);
    }
}
