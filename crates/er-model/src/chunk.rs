//! Contiguous range chunking for the deterministic parallel sweeps.
//!
//! Both the entity-index shard builder and `mb-core`'s chunked edge sweeps
//! split `0..n` into near-equal contiguous ranges; this is the one shared
//! implementation (DESIGN.md §8 — chunk boundaries are part of the
//! deterministic execution model, so every parallel stage must chunk
//! identically).

use std::ops::Range;

/// Splits `0..n` into at most `threads` contiguous chunks of near-equal
/// size, none smaller than `floor` (except the only chunk of a small input).
///
/// Guarantees: chunks are non-empty, adjacent (each starts where the
/// previous ended) and cover `0..n` exactly; the result is a pure function
/// of `(n, threads, floor)`, never of the machine.
pub fn chunk_ranges(n: usize, threads: usize, floor: usize) -> Vec<Range<usize>> {
    let max_useful = n.div_ceil(floor.max(1)).max(1);
    let threads = threads.max(1).min(max_useful);
    let per = n.div_ceil(threads).max(1);
    (0..threads)
        .map(|t| (t * per).min(n)..((t + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_range_contiguously() {
        for n in [0usize, 1, 255, 256, 257, 10_000] {
            for t in [1usize, 2, 8, 64] {
                for floor in [1usize, 256, 1024] {
                    let cs = chunk_ranges(n, t, floor);
                    let total: usize = cs.iter().map(|r| r.end - r.start).sum();
                    assert_eq!(total, n, "n={n} t={t} floor={floor}");
                    for w in cs.windows(2) {
                        assert_eq!(w[0].end, w[1].start);
                    }
                    assert!(cs.iter().all(|r| !r.is_empty()));
                }
            }
        }
    }

    #[test]
    fn floors_small_inputs_to_one_chunk() {
        assert_eq!(chunk_ranges(256, 16, 256).len(), 1);
        assert_eq!(chunk_ranges(512, 16, 256).len(), 2);
        assert_eq!(chunk_ranges(2, 16, 256), vec![0..2]);
        assert_eq!(chunk_ranges(257, 100, 256).len(), 2);
    }

    #[test]
    fn respects_thread_cap() {
        assert_eq!(chunk_ranges(8_000, 8, 1).len(), 8);
        assert_eq!(chunk_ranges(256 * 8, 8, 256).len(), 8);
        assert_eq!(chunk_ranges(10, 3, 1).len(), 3);
    }

    #[test]
    fn zero_inputs_are_empty() {
        assert!(chunk_ranges(0, 4, 256).is_empty());
    }
}
