//! Entity collections and the two ER tasks of the paper.

use crate::error::{Error, Result};
use crate::fxhash::FxHashSet;
use crate::ids::EntityId;
use crate::profile::EntityProfile;

/// Which ER task a collection represents (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErKind {
    /// *Dirty ER* (Deduplication): one collection that contains duplicates
    /// in itself.
    Dirty,
    /// *Clean-Clean ER* (Record Linkage): two individually duplicate-free but
    /// overlapping collections; only cross-collection comparisons are
    /// meaningful.
    CleanClean,
}

/// The input of an ER task: one (Dirty) or two (Clean-Clean) sets of entity
/// profiles sharing a single dense id space.
///
/// For Clean-Clean ER, profiles `0..split` come from the first collection
/// (E₁) and `split..len` from the second (E₂) — the same convention the
/// reference implementation uses, which lets every algorithm treat ids
/// uniformly and decide cross-collection membership with one comparison.
#[derive(Debug, Clone)]
pub struct EntityCollection {
    profiles: Vec<EntityProfile>,
    kind: ErKind,
    /// First id of the second collection; `len` for Dirty ER.
    split: usize,
}

impl EntityCollection {
    /// Creates a Dirty ER collection.
    pub fn dirty(profiles: Vec<EntityProfile>) -> Self {
        let split = profiles.len();
        EntityCollection { profiles, kind: ErKind::Dirty, split }
    }

    /// Creates a Clean-Clean ER collection from two duplicate-free
    /// collections. E₁ keeps ids `0..e1.len()`, E₂ gets `e1.len()..`.
    pub fn clean_clean(e1: Vec<EntityProfile>, mut e2: Vec<EntityProfile>) -> Self {
        let split = e1.len();
        let mut profiles = e1;
        profiles.append(&mut e2);
        EntityCollection { profiles, kind: ErKind::CleanClean, split }
    }

    /// Merges a Clean-Clean collection into the corresponding Dirty one, as
    /// the paper derives D1D..D3D from D1C..D3C ("we simply merge their clean
    /// entity collections into a single one that contains duplicates in
    /// itself").
    pub fn into_dirty(self) -> Self {
        let split = self.profiles.len();
        EntityCollection { profiles: self.profiles, kind: ErKind::Dirty, split }
    }

    /// The task kind.
    pub fn kind(&self) -> ErKind {
        self.kind
    }

    /// Total number of profiles `|E|` (both collections for Clean-Clean).
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the collection holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// First id of the second collection (Clean-Clean), or `len()` (Dirty).
    pub fn split(&self) -> usize {
        self.split
    }

    /// Size of E₁ and E₂ for Clean-Clean ER.
    pub fn sides(&self) -> (usize, usize) {
        (self.split, self.profiles.len() - self.split)
    }

    /// Whether `id` belongs to the second collection.
    #[inline]
    pub fn is_second(&self, id: EntityId) -> bool {
        id.idx() >= self.split
    }

    /// The profile for `id`.
    ///
    /// # Panics
    /// If `id` is out of bounds; use [`EntityCollection::get`] for a checked
    /// lookup.
    #[inline]
    pub fn profile(&self, id: EntityId) -> &EntityProfile {
        &self.profiles[id.idx()]
    }

    /// Checked profile lookup.
    pub fn get(&self, id: EntityId) -> Result<&EntityProfile> {
        self.profiles
            .get(id.idx())
            .ok_or(Error::EntityOutOfBounds { id: id.0, len: self.profiles.len() })
    }

    /// Iterator over `(id, profile)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, &EntityProfile)> {
        self.profiles.iter().enumerate().map(|(i, p)| (EntityId::from_index(i), p))
    }

    /// All profiles as a slice.
    pub fn profiles(&self) -> &[EntityProfile] {
        &self.profiles
    }

    /// Number of comparisons the brute-force approach executes, `‖E‖`
    /// (Table 2): `n·(n−1)/2` for Dirty ER, `|E₁|·|E₂|` for Clean-Clean.
    pub fn brute_force_comparisons(&self) -> u64 {
        match self.kind {
            ErKind::Dirty => {
                let n = self.profiles.len() as u64;
                n * n.saturating_sub(1) / 2
            }
            ErKind::CleanClean => {
                let (n1, n2) = self.sides();
                n1 as u64 * n2 as u64
            }
        }
    }

    /// Whether a comparison between `a` and `b` is meaningful for this task:
    /// always for Dirty ER, only across collections for Clean-Clean ER.
    #[inline]
    pub fn comparable(&self, a: EntityId, b: EntityId) -> bool {
        a != b && (self.kind == ErKind::Dirty || self.is_second(a) != self.is_second(b))
    }

    /// Replaces the profile at `id`, or appends it when `id == len()`.
    ///
    /// Appends join the second collection for Clean-Clean ER (the split is
    /// frozen); for Dirty ER the split tracks the length. `id > len()` is
    /// rejected — the id space stays dense. This is the merge primitive the
    /// serving layer's delta compaction replays upsert logs through.
    pub fn upsert(&mut self, id: EntityId, profile: EntityProfile) -> Result<()> {
        match id.idx().cmp(&self.profiles.len()) {
            std::cmp::Ordering::Less => {
                self.profiles[id.idx()] = profile;
                Ok(())
            }
            std::cmp::Ordering::Equal => {
                self.profiles.push(profile);
                if self.kind == ErKind::Dirty {
                    self.split = self.profiles.len();
                }
                Ok(())
            }
            std::cmp::Ordering::Greater => {
                Err(Error::EntityOutOfBounds { id: id.0, len: self.profiles.len() })
            }
        }
    }

    /// Removes the profile at `id` and returns it; every later id shifts
    /// down by one (the dense id space is the collection's invariant).
    ///
    /// For Clean-Clean ER a removal below the split shrinks E₁; for Dirty ER
    /// the split tracks the length. The delta compaction path replays delete
    /// logs through this after all upserts resolve.
    pub fn remove(&mut self, id: EntityId) -> Result<EntityProfile> {
        if id.idx() >= self.profiles.len() {
            return Err(Error::EntityOutOfBounds { id: id.0, len: self.profiles.len() });
        }
        let removed = self.profiles.remove(id.idx());
        if self.kind == ErKind::Dirty || id.idx() < self.split {
            self.split -= 1;
        }
        Ok(removed)
    }

    /// Number of distinct attribute names `|N|`, per side for Clean-Clean.
    pub fn distinct_attribute_names(&self) -> (usize, usize) {
        let mut first: FxHashSet<&str> = FxHashSet::default();
        let mut second: FxHashSet<&str> = FxHashSet::default();
        for (id, p) in self.iter() {
            let set = if self.is_second(id) { &mut second } else { &mut first };
            for a in p.attributes() {
                set.insert(a.name.as_str());
            }
        }
        (first.len(), second.len())
    }

    /// Total number of name–value pairs `|P|`, per side for Clean-Clean.
    pub fn total_name_value_pairs(&self) -> (u64, u64) {
        let mut first = 0u64;
        let mut second = 0u64;
        for (id, p) in self.iter() {
            if self.is_second(id) {
                second += p.len() as u64;
            } else {
                first += p.len() as u64;
            }
        }
        (first, second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(uri: &str, pairs: &[(&str, &str)]) -> EntityProfile {
        let mut p = EntityProfile::new(uri);
        for (n, v) in pairs {
            p.add(*n, *v);
        }
        p
    }

    fn sample_clean_clean() -> EntityCollection {
        let e1 = vec![
            profile("a0", &[("name", "jack miller")]),
            profile("a1", &[("name", "erick green"), ("job", "vendor")]),
        ];
        let e2 = vec![
            profile("b0", &[("fullname", "jack l miller")]),
            profile("b1", &[("fullname", "erick lloyd green")]),
            profile("b2", &[("fullname", "james jordan")]),
        ];
        EntityCollection::clean_clean(e1, e2)
    }

    #[test]
    fn dirty_basics() {
        let c = EntityCollection::dirty(vec![profile("x", &[("a", "v")]); 4]);
        assert_eq!(c.kind(), ErKind::Dirty);
        assert_eq!(c.len(), 4);
        assert_eq!(c.split(), 4);
        assert_eq!(c.brute_force_comparisons(), 6);
        assert!(c.comparable(EntityId(0), EntityId(3)));
        assert!(!c.comparable(EntityId(2), EntityId(2)));
    }

    #[test]
    fn clean_clean_basics() {
        let c = sample_clean_clean();
        assert_eq!(c.kind(), ErKind::CleanClean);
        assert_eq!(c.len(), 5);
        assert_eq!(c.sides(), (2, 3));
        assert_eq!(c.brute_force_comparisons(), 6);
        assert!(!c.is_second(EntityId(1)));
        assert!(c.is_second(EntityId(2)));
        // Intra-collection comparisons are not meaningful.
        assert!(!c.comparable(EntityId(0), EntityId(1)));
        assert!(c.comparable(EntityId(0), EntityId(2)));
        assert!(c.comparable(EntityId(4), EntityId(1)));
    }

    #[test]
    fn into_dirty_preserves_profiles() {
        let c = sample_clean_clean().into_dirty();
        assert_eq!(c.kind(), ErKind::Dirty);
        assert_eq!(c.len(), 5);
        assert_eq!(c.brute_force_comparisons(), 10);
        assert!(c.comparable(EntityId(0), EntityId(1)));
    }

    #[test]
    fn checked_lookup() {
        let c = sample_clean_clean();
        assert!(c.get(EntityId(4)).is_ok());
        assert_eq!(c.get(EntityId(5)), Err(Error::EntityOutOfBounds { id: 5, len: 5 }));
    }

    #[test]
    fn schema_statistics() {
        let c = sample_clean_clean();
        assert_eq!(c.distinct_attribute_names(), (2, 1));
        assert_eq!(c.total_name_value_pairs(), (3, 3));
    }

    #[test]
    fn upsert_replaces_appends_and_rejects_sparse_ids() {
        let mut c = EntityCollection::dirty(vec![profile("p0", &[("n", "a")])]);
        c.upsert(EntityId(0), profile("p0", &[("n", "b")])).unwrap();
        assert_eq!(c.profile(EntityId(0)).values().next(), Some("b"));
        c.upsert(EntityId(1), profile("p1", &[("n", "c")])).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.split(), 2); // Dirty split tracks the length
        assert_eq!(
            c.upsert(EntityId(5), profile("p5", &[])),
            Err(Error::EntityOutOfBounds { id: 5, len: 2 })
        );

        let mut cc = sample_clean_clean();
        cc.upsert(EntityId(5), profile("b3", &[("fullname", "z")])).unwrap();
        assert_eq!(cc.sides(), (2, 4)); // appends join E₂, the split is frozen
    }

    #[test]
    fn remove_shifts_ids_and_tracks_the_split() {
        let mut c = sample_clean_clean();
        let gone = c.remove(EntityId(0)).unwrap();
        assert_eq!(gone.uri(), "a0");
        assert_eq!(c.sides(), (1, 3));
        assert_eq!(c.profile(EntityId(0)).uri(), "a1");
        // Removing from E₂ leaves the split alone.
        c.remove(EntityId(3)).unwrap();
        assert_eq!(c.sides(), (1, 2));
        assert_eq!(c.remove(EntityId(9)), Err(Error::EntityOutOfBounds { id: 9, len: 3 }));

        let mut d = EntityCollection::dirty(vec![profile("x", &[("a", "v")]); 3]);
        d.remove(EntityId(1)).unwrap();
        assert_eq!(d.split(), 2);
    }

    #[test]
    fn empty_collection() {
        let c = EntityCollection::dirty(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.brute_force_comparisons(), 0);
    }
}
