//! Strongly typed identifiers.
//!
//! Entity and block ids are plain `u32` indexes under the hood — the paper's
//! largest dataset (D3D) has 3.35 million profiles and 1.5 million blocks,
//! comfortably inside `u32` — but newtypes keep the two id spaces from being
//! mixed up and make the hot arrays (`Vec<EntityId>`, `Vec<BlockId>`) as
//! compact as possible.

use std::fmt;

/// Identifier of an [`crate::EntityProfile`] within an
/// [`crate::EntityCollection`].
///
/// For Clean-Clean ER the id space is shared: ids `0..n1` belong to the first
/// collection and `n1..n1+n2` to the second (see
/// [`crate::EntityCollection::split`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The id as a `usize`, for direct array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Checked construction from a container index.
    ///
    /// The sanctioned way to turn a `usize` position into an id: a bare
    /// `as u32` would silently wrap past 4.29 billion entities and alias an
    /// unrelated profile, which no downstream validation could detect.
    ///
    /// # Panics
    /// If `i` exceeds `u32::MAX` — far outside the design envelope (the
    /// paper's largest dataset has 3.35 million profiles).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        assert!(u32::try_from(i).is_ok(), "entity index {i} does not fit in u32");
        Self(i as u32)
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for EntityId {
    #[inline]
    fn from(v: u32) -> Self {
        EntityId(v)
    }
}

/// Identifier of a [`crate::Block`] within a [`crate::BlockCollection`].
///
/// Block ids reflect the *processing order* of the collection; the LeCoBI
/// condition (least common block index, §2 of the paper) compares these ids,
/// so they must stay ascending after any restructuring.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The id as a `usize`, for direct array indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Checked construction from a container index; see
    /// [`EntityId::from_index`].
    ///
    /// # Panics
    /// If `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        assert!(u32::try_from(i).is_ok(), "block index {i} does not fit in u32");
        Self(i as u32)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u32> for BlockId {
    #[inline]
    fn from(v: u32) -> Self {
        BlockId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_id_roundtrip() {
        let id = EntityId::from(7u32);
        assert_eq!(id.idx(), 7);
        assert_eq!(format!("{id}"), "p7");
        assert_eq!(format!("{id:?}"), "p7");
    }

    #[test]
    fn block_id_roundtrip() {
        let id = BlockId::from(3u32);
        assert_eq!(id.idx(), 3);
        assert_eq!(format!("{id}"), "b3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(EntityId(1) < EntityId(2));
        assert!(BlockId(0) < BlockId(10));
    }
}
