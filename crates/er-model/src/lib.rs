//! # er-model — the entity-resolution substrate
//!
//! This crate provides every data structure that the Enhanced Meta-blocking
//! reproduction (EDBT 2016, Papadakis et al.) builds on:
//!
//! * [`EntityProfile`] — a uniquely identified collection of name–value pairs
//!   describing a real-world object (§3 of the paper);
//! * [`EntityCollection`] — the input of an ER task, either *Dirty ER*
//!   (one collection with duplicates) or *Clean-Clean ER* (two duplicate-free
//!   but overlapping collections);
//! * [`Block`] / [`BlockCollection`] — the output of a blocking method, with
//!   the size/cardinality/BPE statistics used throughout the paper;
//! * [`EntityIndex`] — the inverted index from entity ids to block ids that
//!   underlies the implicit blocking graph and the LeCoBI condition;
//! * [`GroundTruth`] — the set of duplicate pairs `D(E)`;
//! * [`measures`] — Pairs Completeness, Pairs Quality and Reduction Ratio;
//! * [`matching`] — the Jaccard token matcher used for resolution-time
//!   accounting, plus a ground-truth oracle;
//! * [`fxhash`] — a fast, non-cryptographic hasher for the id-keyed maps in
//!   the hot paths (the workloads are hashing-heavy, so the default SipHash
//!   is measurably slower).
//!
//! The crate is deliberately free of any blocking or meta-blocking logic;
//! those live in `er-blocking` and `mb-core`.
//!
//! ## Invariant sanitizing
//!
//! The [`sanitize`] module provides validators for every structure above
//! (`BlockCollection::validate`, `EntityIndex::validate`, …). They are
//! always available; building the crate with the `sanitize` cargo feature
//! additionally runs them as self-checks inside the hot constructors, which
//! downstream crates use to validate whole pipelines under test.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod chunk;
pub mod collection;
pub mod comparisons;
pub mod error;
pub mod fxhash;
pub mod groundtruth;
pub mod ids;
pub mod index;
pub mod matching;
pub mod measures;
pub mod profile;
pub mod sanitize;
pub mod tokenize;
pub mod view;

pub use block::{Block, BlockCollection, BlockCollectionBuilder, BlockRef};
pub use chunk::chunk_ranges;
pub use collection::{EntityCollection, ErKind};
pub use comparisons::{Comparison, ComparisonSet};
pub use error::{Error, Result};
pub use groundtruth::GroundTruth;
pub use ids::{BlockId, EntityId};
pub use index::EntityIndex;
pub use profile::EntityProfile;
pub use sanitize::Violation;
pub use view::U32s;
