//! Error type shared by the workspace crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while constructing or restructuring block collections.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A ratio-valued parameter (e.g. Block Filtering's `r`) was outside
    /// `(0, 1]`.
    InvalidRatio {
        /// Name of the offending parameter.
        param: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The input entity collection contains no profiles.
    EmptyCollection,
    /// An entity id referenced a profile outside the collection.
    EntityOutOfBounds {
        /// The offending id value.
        id: u32,
        /// Number of profiles in the collection.
        len: usize,
    },
    /// A Clean-Clean operation was invoked on a Dirty collection or
    /// vice versa.
    KindMismatch {
        /// What the operation required.
        expected: &'static str,
    },
    /// A parameter that must be positive was zero.
    ZeroParameter(&'static str),
    /// A dataset-generation configuration failed structural validation
    /// (`er-datagen`'s `DatasetConfig::validate`); the payload is the
    /// specific constraint that was violated.
    InvalidConfig(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidRatio { param, value } => {
                write!(f, "parameter `{param}` must lie in (0, 1], got {value}")
            }
            Error::EmptyCollection => write!(f, "entity collection is empty"),
            Error::EntityOutOfBounds { id, len } => {
                write!(f, "entity id {id} out of bounds for collection of {len} profiles")
            }
            Error::KindMismatch { expected } => {
                write!(f, "operation requires a {expected} ER task")
            }
            Error::ZeroParameter(p) => write!(f, "parameter `{p}` must be positive"),
            Error::InvalidConfig(reason) => write!(f, "invalid dataset config: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::InvalidRatio { param: "r", value: 1.5 };
        assert!(e.to_string().contains('r'));
        assert!(e.to_string().contains("1.5"));
        assert_eq!(Error::EmptyCollection.to_string(), "entity collection is empty");
        assert!(Error::EntityOutOfBounds { id: 9, len: 3 }.to_string().contains('9'));
        assert!(Error::KindMismatch { expected: "Clean-Clean" }
            .to_string()
            .contains("Clean-Clean"));
        assert!(Error::ZeroParameter("k").to_string().contains('k'));
        assert_eq!(
            Error::InvalidConfig("matched_pairs exceeds a side size".into()).to_string(),
            "invalid dataset config: matched_pairs exceeds a side size"
        );
    }
}
