//! The Entity Index: an inverted index from entity ids to block ids.
//!
//! This structure (Papadakis et al., TKDE'13) is the backbone of implicit
//! blocking-graph processing: the *block list* `B_i` of profile `p_i` is the
//! ascending list of ids of the blocks containing it. Two profiles co-occur
//! iff their block lists intersect, and the LeCoBI condition — "a comparison
//! `p_i`-`p_j` in block `b_k` is non-redundant only if `k` equals the least
//! common block id of the two profiles" — de-duplicates comparisons without
//! materializing them.

use crate::block::BlockCollection;
use crate::chunk::chunk_ranges;
use crate::ids::{BlockId, EntityId};

/// Minimum blocks per construction shard: below this, spawning a worker
/// costs more than counting its assignments, so small collections build
/// sequentially no matter how many threads are configured.
const MIN_BLOCKS_PER_SHARD: usize = 256;

/// Minimum entities per merge worker (same rationale).
const MIN_ENTITIES_PER_MERGE: usize = 1024;

/// Prefix-sums per-entity assignment counts into the flat `offsets` array,
/// failing loudly if the total overflows the u32 offset space (a collection
/// beyond 4B assignments would otherwise wrap and silently alias earlier
/// entities' lists).
fn accumulate_offsets(counts: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &c in counts {
        let next = acc.checked_add(c);
        assert!(
            next.is_some(),
            "entity index exceeds the u32 offset space (more than {} assignments)",
            u32::MAX
        );
        acc = next.unwrap_or(acc);
        offsets.push(acc);
    }
    offsets
}

/// Builds the inverted-index shard of one contiguous block range: the same
/// two-pass count/fill as [`EntityIndex::build`], over `blocks[range]` only,
/// storing global block ids.
fn build_shard(blocks: &BlockCollection, range: std::ops::Range<usize>) -> EntityIndex {
    let n = blocks.num_entities();
    let mut counts = vec![0u32; n];
    for k in range.clone() {
        for e in blocks.block(k).entities() {
            counts[e.idx()] += 1;
        }
    }
    let offsets = accumulate_offsets(&counts);
    let total = *offsets.last().unwrap_or(&0) as usize;
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut lists = vec![0u32; total];
    for k in range {
        for e in blocks.block(k).entities() {
            let c = &mut cursor[e.idx()];
            lists[*c as usize] = k as u32;
            *c += 1;
        }
    }
    EntityIndex { lists, offsets }
}

/// Inverted index from entity id to the ascending list of containing block
/// ids.
#[derive(Debug, Clone)]
pub struct EntityIndex {
    /// Flattened block lists: `lists[offsets[i]..offsets[i+1]]` is `B_i`.
    ///
    /// A flat layout keeps the index in two allocations regardless of the
    /// number of entities — the per-entity `Vec<Vec<u32>>` alternative costs
    /// one allocation per profile and fragments the heap at million-entity
    /// scale.
    lists: Vec<u32>,
    offsets: Vec<u32>,
}

impl EntityIndex {
    /// Builds the index for a block collection. Block ids are positions in
    /// the collection's processing order.
    pub fn build(blocks: &BlockCollection) -> Self {
        let n = blocks.num_entities();
        // First pass: count assignments per entity.
        let mut counts = vec![0u32; n];
        for b in blocks.iter() {
            for e in b.entities() {
                counts[e.idx()] += 1;
            }
        }
        // Prefix sums -> offsets (checked: >4B assignments fail loudly).
        let offsets = accumulate_offsets(&counts);
        let total = *offsets.last().unwrap_or(&0) as usize;
        // Second pass: fill. Blocks are visited in ascending id order, so
        // each entity's slice ends up sorted without an explicit sort.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut lists = vec![0u32; total];
        for (k, b) in blocks.iter().enumerate() {
            for e in b.entities() {
                let c = &mut cursor[e.idx()];
                lists[*c as usize] = k as u32;
                *c += 1;
            }
        }
        let index = EntityIndex { lists, offsets };
        #[cfg(feature = "sanitize")]
        crate::sanitize::assert_valid(&index.validate(blocks), "EntityIndex::build");
        index
    }

    /// Builds the index with up to `threads` workers, bit-identical to
    /// [`EntityIndex::build`].
    ///
    /// The block range is split into contiguous chunks; every worker builds
    /// a private inverted-index shard over its chunk (global block ids, so
    /// each entity's shard sub-list is ascending). The shards are then
    /// merged by concatenating, per entity, its sub-lists in chunk order —
    /// chunk order is ascending block-id order, so the merged list equals
    /// the sequential build's. The merge itself is also parallel: each
    /// worker owns a contiguous entity range, whose assignments form a
    /// contiguous slice of the flat `lists` buffer.
    pub fn build_parallel(blocks: &BlockCollection, threads: usize) -> Self {
        let num_blocks = blocks.size();
        let ranges = chunk_ranges(num_blocks, threads, MIN_BLOCKS_PER_SHARD);
        if ranges.len() <= 1 {
            return Self::build(blocks);
        }
        let shards: Vec<EntityIndex> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| scope.spawn(move || build_shard(blocks, range)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let n = blocks.num_entities();
        let mut counts = vec![0u32; n];
        for (e, c) in counts.iter_mut().enumerate() {
            for s in &shards {
                *c += s.offsets[e + 1] - s.offsets[e];
            }
        }
        let offsets = accumulate_offsets(&counts);
        let total = *offsets.last().unwrap_or(&0) as usize;
        let mut lists = vec![0u32; total];
        let entity_ranges = chunk_ranges(n, threads, MIN_ENTITIES_PER_MERGE);
        std::thread::scope(|scope| {
            let mut rest: &mut [u32] = &mut lists;
            let mut handles = Vec::new();
            for range in entity_ranges {
                let len = (offsets[range.end] - offsets[range.start]) as usize;
                let (mine, tail) = rest.split_at_mut(len);
                rest = tail;
                let shards = &shards;
                handles.push(scope.spawn(move || {
                    let mut out = 0usize;
                    for e in range {
                        for s in shards {
                            let sub = &s.lists[s.offsets[e] as usize..s.offsets[e + 1] as usize];
                            mine[out..out + sub.len()].copy_from_slice(sub);
                            out += sub.len();
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            }
        });
        let index = EntityIndex { lists, offsets };
        #[cfg(feature = "sanitize")]
        crate::sanitize::assert_valid(&index.validate(blocks), "EntityIndex::build_parallel");
        index
    }

    /// Assembles an index from its raw parts: the flattened block lists and
    /// the entity offsets (`lists[offsets[i]..offsets[i+1]]` is `B_i`).
    ///
    /// No invariants are checked — this is the escape hatch the sanitizer
    /// tests use to build deliberately corrupted indices, and a
    /// deserialization entry point. Run [`EntityIndex::validate`] on the
    /// result before trusting it.
    ///
    /// # Panics
    /// If `offsets` is empty, not ascending, or its last entry does not
    /// equal `lists.len()` — the parts would not even describe slices.
    pub fn from_raw_parts(lists: Vec<u32>, offsets: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must hold at least one entry");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be ascending");
        assert_eq!(
            *offsets.last().unwrap_or(&0) as usize,
            lists.len(),
            "last offset must cover all of lists"
        );
        EntityIndex { lists, offsets }
    }

    /// Decomposes the index into its raw parts (see
    /// [`EntityIndex::from_raw_parts`]).
    pub fn into_raw_parts(self) -> (Vec<u32>, Vec<u32>) {
        (self.lists, self.offsets)
    }

    /// The raw parts by reference: `(lists, offsets)` — the serialization
    /// view of the index, persisted verbatim by the snapshot codec.
    pub fn raw_parts(&self) -> (&[u32], &[u32]) {
        (&self.lists, &self.offsets)
    }

    /// Like [`EntityIndex::from_raw_parts`], but returns the first breached
    /// structural invariant instead of panicking — the deserialization entry
    /// point for untrusted bytes. Run [`EntityIndex::validate`] against the
    /// owning block collection before trusting the result.
    pub fn try_from_raw_parts(
        lists: Vec<u32>,
        offsets: Vec<u32>,
    ) -> Result<Self, crate::sanitize::Violation> {
        let err = |invariant: &'static str, message: String| {
            Err(crate::sanitize::Violation { invariant, message })
        };
        if offsets.is_empty() {
            return err("index-offsets-empty", "offsets must hold at least one entry".into());
        }
        if let Some(w) = offsets.windows(2).position(|w| w[0] > w[1]) {
            return err(
                "index-offsets-descending",
                format!("offsets[{w}] = {} > offsets[{}] = {}", offsets[w], w + 1, offsets[w + 1]),
            );
        }
        let last = *offsets.last().unwrap_or(&0) as usize;
        if last != lists.len() {
            return err(
                "index-offset-coverage",
                format!("last offset {last} does not cover the {} assignments", lists.len()),
            );
        }
        Ok(EntityIndex { lists, offsets })
    }

    /// The block list `B_i`: ascending ids of the blocks containing `id`.
    #[inline]
    pub fn block_list(&self, id: EntityId) -> &[u32] {
        let lo = self.offsets[id.idx()] as usize;
        let hi = self.offsets[id.idx() + 1] as usize;
        &self.lists[lo..hi]
    }

    /// `|B_i|`: the number of blocks containing `id`.
    #[inline]
    pub fn num_blocks_of(&self, id: EntityId) -> usize {
        (self.offsets[id.idx() + 1] - self.offsets[id.idx()]) as usize
    }

    /// Number of entities covered by the index.
    pub fn num_entities(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `|B_ij|`: the number of blocks shared by two profiles, via sorted-list
    /// intersection.
    pub fn common_blocks(&self, a: EntityId, b: EntityId) -> usize {
        let (mut x, mut y) = (self.block_list(a), self.block_list(b));
        let mut count = 0;
        while let (Some(&i), Some(&j)) = (x.first(), y.first()) {
            match i.cmp(&j) {
                std::cmp::Ordering::Less => x = &x[1..],
                std::cmp::Ordering::Greater => y = &y[1..],
                std::cmp::Ordering::Equal => {
                    count += 1;
                    x = &x[1..];
                    y = &y[1..];
                }
            }
        }
        count
    }

    /// The least common block id of two profiles, if they co-occur at all.
    pub fn least_common_block(&self, a: EntityId, b: EntityId) -> Option<BlockId> {
        let (mut x, mut y) = (self.block_list(a), self.block_list(b));
        while let (Some(&i), Some(&j)) = (x.first(), y.first()) {
            match i.cmp(&j) {
                std::cmp::Ordering::Less => x = &x[1..],
                std::cmp::Ordering::Greater => y = &y[1..],
                std::cmp::Ordering::Equal => return Some(BlockId(i)),
            }
        }
        None
    }

    /// The LeCoBI condition: whether the comparison `a`-`b` inside block `k`
    /// is non-redundant, i.e. `k` is the least common block id of the pair.
    #[inline]
    pub fn is_lecobi(&self, a: EntityId, b: EntityId, k: BlockId) -> bool {
        self.least_common_block(a, b) == Some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::collection::ErKind;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn sample() -> BlockCollection {
        // b0 = {0,1}, b1 = {0,1,2}, b2 = {1,2,3}, b3 = {4} (no comparisons
        // but still indexed).
        BlockCollection::new(
            ErKind::Dirty,
            5,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[1, 2, 3])),
                Block::dirty(ids(&[4])),
            ],
        )
    }

    #[test]
    fn block_lists_are_ascending() {
        let idx = EntityIndex::build(&sample());
        assert_eq!(idx.block_list(EntityId(0)), &[0, 1]);
        assert_eq!(idx.block_list(EntityId(1)), &[0, 1, 2]);
        assert_eq!(idx.block_list(EntityId(2)), &[1, 2]);
        assert_eq!(idx.block_list(EntityId(3)), &[2]);
        assert_eq!(idx.block_list(EntityId(4)), &[3]);
        assert_eq!(idx.num_entities(), 5);
    }

    #[test]
    fn num_blocks_matches_list_len() {
        let idx = EntityIndex::build(&sample());
        for e in 0..5u32 {
            assert_eq!(idx.num_blocks_of(EntityId(e)), idx.block_list(EntityId(e)).len());
        }
    }

    #[test]
    fn common_blocks_counts_intersection() {
        let idx = EntityIndex::build(&sample());
        assert_eq!(idx.common_blocks(EntityId(0), EntityId(1)), 2);
        assert_eq!(idx.common_blocks(EntityId(0), EntityId(2)), 1);
        assert_eq!(idx.common_blocks(EntityId(0), EntityId(3)), 0);
        assert_eq!(idx.common_blocks(EntityId(1), EntityId(2)), 2);
    }

    #[test]
    fn least_common_block() {
        let idx = EntityIndex::build(&sample());
        assert_eq!(idx.least_common_block(EntityId(0), EntityId(1)), Some(BlockId(0)));
        assert_eq!(idx.least_common_block(EntityId(1), EntityId(2)), Some(BlockId(1)));
        assert_eq!(idx.least_common_block(EntityId(0), EntityId(3)), None);
    }

    #[test]
    fn lecobi_condition() {
        let idx = EntityIndex::build(&sample());
        // Pair (0,1) first co-occurs in b0: the repetition in b1 is redundant.
        assert!(idx.is_lecobi(EntityId(0), EntityId(1), BlockId(0)));
        assert!(!idx.is_lecobi(EntityId(0), EntityId(1), BlockId(1)));
        // Non-co-occurring pair never satisfies it.
        assert!(!idx.is_lecobi(EntityId(0), EntityId(4), BlockId(3)));
    }

    #[test]
    fn lecobi_dedupes_exactly_once_per_pair() {
        let blocks = sample();
        let idx = EntityIndex::build(&blocks);
        let mut distinct = std::collections::HashSet::new();
        let mut emitted = 0;
        for (k, b) in blocks.iter().enumerate() {
            b.for_each_comparison(|a, c| {
                if idx.is_lecobi(a, c, BlockId(k as u32)) {
                    emitted += 1;
                    distinct.insert((a, c));
                }
            });
        }
        // Every distinct pair emitted exactly once.
        assert_eq!(emitted, distinct.len());
        // Pairs: (0,1),(0,2),(1,2),(1,3),(2,3)
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let blocks = sample();
        let idx = EntityIndex::build(&blocks);
        let lists_before = idx.block_list(EntityId(1)).to_vec();
        let (lists, offsets) = idx.clone().into_raw_parts();
        let rebuilt = EntityIndex::from_raw_parts(lists, offsets);
        assert_eq!(rebuilt.block_list(EntityId(1)), &lists_before[..]);
        assert!(rebuilt.validate(&blocks).is_empty());
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn raw_parts_reject_inconsistent_lengths() {
        EntityIndex::from_raw_parts(vec![0, 1], vec![0, 1]);
    }

    #[test]
    fn try_from_raw_parts_reports_instead_of_panicking() {
        let inv = |r: Result<EntityIndex, crate::sanitize::Violation>| r.unwrap_err().invariant;
        assert_eq!(inv(EntityIndex::try_from_raw_parts(vec![], vec![])), "index-offsets-empty");
        assert_eq!(
            inv(EntityIndex::try_from_raw_parts(vec![0, 1], vec![0, 2, 1])),
            "index-offsets-descending"
        );
        assert_eq!(
            inv(EntityIndex::try_from_raw_parts(vec![0, 1], vec![0, 1])),
            "index-offset-coverage"
        );
        // A well-formed pair round-trips through the borrow view.
        let idx = EntityIndex::build(&sample());
        let (lists, offsets) = idx.raw_parts();
        let rebuilt = EntityIndex::try_from_raw_parts(lists.to_vec(), offsets.to_vec()).unwrap();
        assert_eq!(rebuilt.block_list(EntityId(1)), idx.block_list(EntityId(1)));
    }

    #[test]
    fn corrupted_index_reports_dangling_block_id() {
        let blocks = sample();
        let (mut lists, offsets) = EntityIndex::build(&blocks).into_raw_parts();
        // Entity 0's list is [0, 1]; repoint its second assignment at a
        // block the collection does not have.
        lists[1] = 99;
        let bad = EntityIndex::from_raw_parts(lists, offsets);
        let v = bad.validate(&blocks);
        let dangling: Vec<_> = v.iter().filter(|v| v.invariant == "dangling-block-id").collect();
        assert_eq!(dangling.len(), 1);
        assert!(dangling[0].message.contains("entity 0"), "{}", dangling[0].message);
        assert!(dangling[0].message.contains("block 99"), "{}", dangling[0].message);
        // The real assignment to block 1 is gone as well.
        assert!(v.iter().any(|v| v.invariant == "missing-assignment"));
    }

    /// Enough blocks to exceed the shard floor several times over, so the
    /// parallel path is actually exercised (small inputs fall back to the
    /// sequential build).
    fn many_blocks() -> BlockCollection {
        let n = 600u32;
        let mut blocks = Vec::new();
        for i in 0..MIN_BLOCKS_PER_SHARD as u32 * 4 {
            let a = i % n;
            let b = (i * 7 + 3) % n;
            let c = (i * 13 + 1) % n;
            let mut members = vec![a, b, c];
            members.sort_unstable();
            members.dedup();
            blocks.push(Block::dirty(ids(&members)));
        }
        BlockCollection::new(ErKind::Dirty, n as usize, blocks)
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let blocks = many_blocks();
        let seq = EntityIndex::build(&blocks);
        for threads in [1, 2, 3, 4, 8, 16] {
            let par = EntityIndex::build_parallel(&blocks, threads);
            let (pl, po) = par.into_raw_parts();
            let (sl, so) = seq.clone().into_raw_parts();
            assert_eq!(po, so, "offsets differ at {threads} threads");
            assert_eq!(pl, sl, "lists differ at {threads} threads");
        }
    }

    #[test]
    fn parallel_build_falls_back_on_small_inputs() {
        // A handful of blocks must not fan out; the result is still correct.
        let blocks = sample();
        let par = EntityIndex::build_parallel(&blocks, 16);
        assert_eq!(par.block_list(EntityId(1)), &[0, 1, 2]);
        assert!(par.validate(&blocks).is_empty());
    }

    #[test]
    fn offset_accumulation_is_exact() {
        assert_eq!(accumulate_offsets(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(accumulate_offsets(&[]), vec![0]);
        // The boundary total is still representable.
        assert_eq!(accumulate_offsets(&[u32::MAX - 1, 1]), vec![0, u32::MAX - 1, u32::MAX]);
    }

    #[test]
    #[should_panic(expected = "u32 offset space")]
    fn offset_accumulation_overflow_fails_loudly() {
        // >4B total assignments must abort instead of wrapping and aliasing
        // earlier entities' block lists.
        accumulate_offsets(&[u32::MAX, 1]);
    }

    #[test]
    fn empty_index() {
        let blocks = BlockCollection::new(ErKind::Dirty, 3, vec![]);
        let idx = EntityIndex::build(&blocks);
        assert_eq!(idx.block_list(EntityId(1)), &[] as &[u32]);
        assert_eq!(idx.common_blocks(EntityId(0), EntityId(2)), 0);
    }
}
