//! The high-level meta-blocking pipeline.
//!
//! Assembles the paper's workflow of Figure 7(a): optional Block Filtering,
//! then graph-based pruning under a chosen weighting scheme — or the
//! graph-free workflow of Figure 7(b).

use crate::context::GraphContext;
use crate::filter::block_filtering;
use crate::graphfree::graph_free_meta_blocking;
use crate::prune;
use crate::weights::{EdgeWeigher, WeightingScheme};
use er_model::{BlockCollection, EntityId, ErKind, Result};

pub use crate::weighting::WeightingImpl;

/// Every pruning scheme the crate implements, as a selectable configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningScheme {
    /// Cardinality Edge Pruning (global top-`K`).
    Cep,
    /// Cardinality Node Pruning, original directed semantics.
    Cnp,
    /// Weighted Edge Pruning (global mean threshold).
    Wep,
    /// Weighted Node Pruning, original directed semantics.
    Wnp,
    /// Redefined CNP (Algorithm 4).
    RedefinedCnp,
    /// Redefined WNP (Algorithm 5).
    RedefinedWnp,
    /// Reciprocal CNP (§5.2).
    ReciprocalCnp,
    /// Reciprocal WNP (§5.2).
    ReciprocalWnp,
}

impl PruningScheme {
    /// The four schemes of the prior-art framework (Table 3).
    pub const ORIGINAL: [PruningScheme; 4] =
        [PruningScheme::Cep, PruningScheme::Cnp, PruningScheme::Wep, PruningScheme::Wnp];

    /// The four schemes the paper introduces (Table 4).
    pub const ENHANCED: [PruningScheme; 4] = [
        PruningScheme::RedefinedCnp,
        PruningScheme::ReciprocalCnp,
        PruningScheme::RedefinedWnp,
        PruningScheme::ReciprocalWnp,
    ];

    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            PruningScheme::Cep => "CEP",
            PruningScheme::Cnp => "CNP",
            PruningScheme::Wep => "WEP",
            PruningScheme::Wnp => "WNP",
            PruningScheme::RedefinedCnp => "Redefined CNP",
            PruningScheme::RedefinedWnp => "Redefined WNP",
            PruningScheme::ReciprocalCnp => "Reciprocal CNP",
            PruningScheme::ReciprocalWnp => "Reciprocal WNP",
        }
    }

    /// Whether the scheme prunes per node (vs per edge).
    pub fn is_node_centric(self) -> bool {
        !matches!(self, PruningScheme::Cep | PruningScheme::Wep)
    }

    /// Whether the scheme can emit the same pair twice (original directed
    /// node-centric semantics).
    pub fn emits_redundant_comparisons(self) -> bool {
        matches!(self, PruningScheme::Cnp | PruningScheme::Wnp)
    }
}

/// Builder for a full meta-blocking run.
///
/// ```
/// use er_blocking::{fixtures, BlockingMethod, TokenBlocking};
/// use mb_core::{MetaBlocking, PruningScheme, WeightingScheme};
///
/// let collection = fixtures::figure1_collection();
/// let blocks = TokenBlocking.build(&collection);
/// let retained = MetaBlocking::new(WeightingScheme::Js, PruningScheme::Wep)
///     .run_collect(&blocks, collection.split())
///     .unwrap();
/// // WEP with the exact mean threshold keeps the 4 strongest edges of
/// // Figure 2(a), both duplicate pairs among them.
/// assert_eq!(retained.len(), 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MetaBlocking {
    scheme: WeightingScheme,
    pruning: PruningScheme,
    weighting_impl: WeightingImpl,
    block_filtering: Option<f64>,
}

impl MetaBlocking {
    /// A pipeline with the given weighting scheme and pruning scheme, no
    /// Block Filtering, and Optimized Edge Weighting.
    pub fn new(scheme: WeightingScheme, pruning: PruningScheme) -> Self {
        MetaBlocking {
            scheme,
            pruning,
            weighting_impl: WeightingImpl::Optimized,
            block_filtering: None,
        }
    }

    /// Enables Block Filtering with ratio `r` as pre-processing.
    #[must_use]
    pub fn with_block_filtering(mut self, r: f64) -> Self {
        self.block_filtering = Some(r);
        self
    }

    /// Selects the edge-weighting implementation (default: Optimized).
    #[must_use]
    pub fn with_weighting_impl(mut self, imp: WeightingImpl) -> Self {
        self.weighting_impl = imp;
        self
    }

    /// The configured weighting scheme.
    pub fn scheme(&self) -> WeightingScheme {
        self.scheme
    }

    /// The configured pruning scheme.
    pub fn pruning(&self) -> PruningScheme {
        self.pruning
    }

    /// Runs the pipeline, streaming every retained comparison to `sink`.
    ///
    /// `split` is the Clean-Clean id boundary
    /// ([`er_model::EntityCollection::split`]); for Dirty ER pass the
    /// collection size — [`er_model::EntityCollection::split`] returns
    /// exactly that, so `collection.split()` is always correct.
    pub fn run(
        &self,
        blocks: &BlockCollection,
        split: usize,
        sink: impl FnMut(EntityId, EntityId),
    ) -> Result<()> {
        let filtered;
        let input = match self.block_filtering {
            Some(r) => {
                filtered = block_filtering(blocks, r)?;
                &filtered
            }
            None => blocks,
        };
        let split = if blocks.kind() == ErKind::Dirty { blocks.num_entities() } else { split };
        let ctx = GraphContext::new(input, split);
        let weigher = EdgeWeigher::new(self.scheme, &ctx);
        let imp = self.weighting_impl;
        // Sanitize mode: validate the pruning input up front, pre-compute
        // the redefined retained-set a reciprocal scheme must stay inside,
        // and check every retained comparison as it streams out.
        #[cfg(feature = "sanitize")]
        let redefined = {
            crate::sanitize::check_pipeline_input(&ctx);
            match self.pruning {
                PruningScheme::ReciprocalCnp => {
                    Some(crate::sanitize::redefined_retained_set(true, &ctx, &weigher, imp))
                }
                PruningScheme::ReciprocalWnp => {
                    Some(crate::sanitize::redefined_retained_set(false, &ctx, &weigher, imp))
                }
                _ => None,
            }
        };
        #[cfg(not(feature = "sanitize"))]
        let mut sink = sink;
        #[cfg(feature = "sanitize")]
        let mut sink = {
            let ctx = &ctx;
            let mut inner = sink;
            move |a: EntityId, b: EntityId| {
                crate::sanitize::check_retained(ctx, a, b, redefined.as_ref());
                inner(a, b)
            }
        };
        match self.pruning {
            PruningScheme::Cep => prune::cep(&ctx, &weigher, imp, &mut sink),
            PruningScheme::Cnp => prune::cnp(&ctx, &weigher, imp, &mut sink),
            PruningScheme::Wep => prune::wep(&ctx, &weigher, imp, &mut sink),
            PruningScheme::Wnp => prune::wnp(&ctx, &weigher, imp, &mut sink),
            PruningScheme::RedefinedCnp => prune::redefined_cnp(&ctx, &weigher, imp, &mut sink),
            PruningScheme::RedefinedWnp => prune::redefined_wnp(&ctx, &weigher, imp, &mut sink),
            PruningScheme::ReciprocalCnp => prune::reciprocal_cnp(&ctx, &weigher, imp, &mut sink),
            PruningScheme::ReciprocalWnp => prune::reciprocal_wnp(&ctx, &weigher, imp, &mut sink),
        }
        Ok(())
    }

    /// Runs the pipeline and collects the retained comparisons.
    ///
    /// For the original node-centric schemes the result may contain the same
    /// pair twice (their documented redundancy); every other scheme yields
    /// distinct pairs.
    pub fn run_collect(
        &self,
        blocks: &BlockCollection,
        split: usize,
    ) -> Result<Vec<(EntityId, EntityId)>> {
        let mut out = Vec::new();
        self.run(blocks, split, |a, b| out.push((a, b)))?;
        Ok(out)
    }
}

/// Convenience wrapper for the graph-free workflow, mirroring
/// [`MetaBlocking::run`].
pub fn run_graph_free(
    blocks: &BlockCollection,
    split: usize,
    r: f64,
    sink: impl FnMut(EntityId, EntityId),
) -> Result<()> {
    let split = if blocks.kind() == ErKind::Dirty { blocks.num_entities() } else { split };
    graph_free_meta_blocking(blocks, split, r, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, GroundTruth};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[2, 3])),
            ],
        )
    }

    #[test]
    fn scheme_metadata() {
        assert_eq!(PruningScheme::Cep.name(), "CEP");
        assert!(!PruningScheme::Cep.is_node_centric());
        assert!(PruningScheme::ReciprocalWnp.is_node_centric());
        assert!(PruningScheme::Cnp.emits_redundant_comparisons());
        assert!(!PruningScheme::RedefinedCnp.emits_redundant_comparisons());
        assert_eq!(PruningScheme::ORIGINAL.len(), 4);
        assert_eq!(PruningScheme::ENHANCED.len(), 4);
    }

    #[test]
    fn every_configuration_runs() {
        let blocks = fixture();
        for scheme in WeightingScheme::ALL {
            for pruning in PruningScheme::ORIGINAL.into_iter().chain(PruningScheme::ENHANCED) {
                for imp in [WeightingImpl::Original, WeightingImpl::Optimized] {
                    let out = MetaBlocking::new(scheme, pruning)
                        .with_weighting_impl(imp)
                        .run_collect(&blocks, 4)
                        .unwrap();
                    assert!(!out.is_empty(), "{} + {}", scheme.name(), pruning.name());
                }
            }
        }
    }

    #[test]
    fn original_and_optimized_impls_agree() {
        let blocks = fixture();
        for scheme in WeightingScheme::ALL {
            for pruning in PruningScheme::ORIGINAL.into_iter().chain(PruningScheme::ENHANCED) {
                let a = MetaBlocking::new(scheme, pruning)
                    .with_weighting_impl(WeightingImpl::Original)
                    .run_collect(&blocks, 4)
                    .unwrap();
                let b = MetaBlocking::new(scheme, pruning)
                    .with_weighting_impl(WeightingImpl::Optimized)
                    .run_collect(&blocks, 4)
                    .unwrap();
                let norm = |v: &[(EntityId, EntityId)]| {
                    let mut v: Vec<(u32, u32)> =
                        v.iter().map(|&(x, y)| (x.0.min(y.0), x.0.max(y.0))).collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(norm(&a), norm(&b), "{} + {}", scheme.name(), pruning.name());
            }
        }
    }

    #[test]
    fn block_filtering_is_applied_first() {
        let blocks = fixture();
        // CEP's K = ⌊Σ|b|/2⌋ shrinks with the filtered assignments, so its
        // output cannot grow under Block Filtering.
        let unfiltered = MetaBlocking::new(WeightingScheme::Cbs, PruningScheme::Cep)
            .run_collect(&blocks, 4)
            .unwrap();
        let filtered = MetaBlocking::new(WeightingScheme::Cbs, PruningScheme::Cep)
            .with_block_filtering(0.5)
            .run_collect(&blocks, 4)
            .unwrap();
        assert!(filtered.len() < unfiltered.len());
    }

    #[test]
    fn invalid_filter_ratio_propagates() {
        let blocks = fixture();
        let res = MetaBlocking::new(WeightingScheme::Js, PruningScheme::Wep)
            .with_block_filtering(2.0)
            .run_collect(&blocks, 4);
        assert!(res.is_err());
    }

    #[test]
    fn pruning_keeps_the_duplicates() {
        // The strongest edge is the duplicate pair; every scheme must keep it.
        let blocks = fixture();
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1))]);
        for pruning in PruningScheme::ORIGINAL.into_iter().chain(PruningScheme::ENHANCED) {
            let out =
                MetaBlocking::new(WeightingScheme::Js, pruning).run_collect(&blocks, 4).unwrap();
            assert!(
                out.iter().any(|&(a, b)| gt.are_duplicates(a, b)),
                "{} lost the duplicate",
                pruning.name()
            );
        }
    }

    #[test]
    fn graph_free_runs() {
        let blocks = fixture();
        let mut n = 0;
        run_graph_free(&blocks, 4, 0.5, |_, _| n += 1).unwrap();
        assert!(n > 0);
    }

    #[test]
    fn clean_clean_pipeline_respects_the_split() {
        // Blocks crossing a split at 3: left {0,1,2}, right {3,4,5}.
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            6,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[3, 4])),
                Block::clean_clean(ids(&[0]), ids(&[3])),
                Block::clean_clean(ids(&[2]), ids(&[5])),
            ],
        );
        for scheme in WeightingScheme::ALL {
            for pruning in PruningScheme::ORIGINAL.into_iter().chain(PruningScheme::ENHANCED) {
                let out = MetaBlocking::new(scheme, pruning).run_collect(&blocks, 3).unwrap();
                assert!(!out.is_empty(), "{} + {}", scheme.name(), pruning.name());
                for (a, b) in out {
                    assert!(
                        (a.idx() < 3) != (b.idx() < 3),
                        "{} + {}: intra-collection pair {a}-{b}",
                        scheme.name(),
                        pruning.name()
                    );
                }
            }
        }
    }

    #[test]
    fn strongest_clean_clean_edge_always_survives() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            6,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[3, 4])),
                Block::clean_clean(ids(&[0]), ids(&[3])),
                Block::clean_clean(ids(&[0, 2]), ids(&[3, 5])),
            ],
        );
        // (0,3) shares all three blocks: the strongest edge under the
        // schemes that reward raw co-occurrence. (ECBS/EJS legitimately
        // discount it to zero — profile 0 sits in every block, so it
        // carries no discriminating signal under their logarithms.)
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Cbs, WeightingScheme::Js] {
            for pruning in PruningScheme::ORIGINAL.into_iter().chain(PruningScheme::ENHANCED) {
                let out = MetaBlocking::new(scheme, pruning).run_collect(&blocks, 3).unwrap();
                assert!(
                    out.iter().any(|&(a, b)| (a.0, b.0) == (0, 3) || (b.0, a.0) == (0, 3)),
                    "{} + {} lost the strongest edge",
                    scheme.name(),
                    pruning.name()
                );
            }
        }
    }
}
