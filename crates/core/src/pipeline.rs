//! The high-level meta-blocking pipeline.
//!
//! Assembles the paper's workflow of Figure 7(a): optional Block Filtering,
//! then graph-based pruning under a chosen weighting scheme — or the
//! graph-free workflow of Figure 7(b).
//!
//! The whole run is described by a [`PipelineConfig`] (serializable to JSON
//! for reproducible experiment manifests) and executed by
//! [`MetaBlocking::run`], which streams retained comparisons to a sink and
//! per-stage telemetry to an [`Observer`] — pass [`Noop`] to compile the
//! instrumentation down to nothing.

use crate::context::GraphContext;
use crate::filter::block_filtering;
use crate::graphfree::graph_free_meta_blocking_threads;
use crate::prune;
use crate::weights::{EdgeWeigher, WeightingScheme};
use er_model::{BlockCollection, EntityId, ErKind, Result};
use mb_observe::json::Json;
use mb_observe::{Counter, Noop, Observer, Stage, StageScope};
use std::fmt;
use std::str::FromStr;

pub use crate::weighting::WeightingImpl;

/// Every pruning scheme the crate implements, as a selectable configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruningScheme {
    /// Cardinality Edge Pruning (global top-`K`).
    Cep,
    /// Cardinality Node Pruning, original directed semantics.
    Cnp,
    /// Weighted Edge Pruning (global mean threshold).
    Wep,
    /// Weighted Node Pruning, original directed semantics.
    Wnp,
    /// Redefined CNP (Algorithm 4).
    RedefinedCnp,
    /// Redefined WNP (Algorithm 5).
    RedefinedWnp,
    /// Reciprocal CNP (§5.2).
    ReciprocalCnp,
    /// Reciprocal WNP (§5.2).
    ReciprocalWnp,
}

impl PruningScheme {
    /// The four schemes of the prior-art framework (Table 3).
    pub const ORIGINAL: [PruningScheme; 4] =
        [PruningScheme::Cep, PruningScheme::Cnp, PruningScheme::Wep, PruningScheme::Wnp];

    /// The four schemes the paper introduces (Table 4).
    pub const ENHANCED: [PruningScheme; 4] = [
        PruningScheme::RedefinedCnp,
        PruningScheme::ReciprocalCnp,
        PruningScheme::RedefinedWnp,
        PruningScheme::ReciprocalWnp,
    ];

    /// All eight schemes, originals first.
    pub const ALL: [PruningScheme; 8] = [
        PruningScheme::Cep,
        PruningScheme::Cnp,
        PruningScheme::Wep,
        PruningScheme::Wnp,
        PruningScheme::RedefinedCnp,
        PruningScheme::ReciprocalCnp,
        PruningScheme::RedefinedWnp,
        PruningScheme::ReciprocalWnp,
    ];

    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            PruningScheme::Cep => "CEP",
            PruningScheme::Cnp => "CNP",
            PruningScheme::Wep => "WEP",
            PruningScheme::Wnp => "WNP",
            PruningScheme::RedefinedCnp => "Redefined CNP",
            PruningScheme::RedefinedWnp => "Redefined WNP",
            PruningScheme::ReciprocalCnp => "Reciprocal CNP",
            PruningScheme::ReciprocalWnp => "Reciprocal WNP",
        }
    }

    /// The stable lowercase token used on command lines and in JSON configs
    /// (the [`Display`]/[`FromStr`] form).
    pub fn token(self) -> &'static str {
        match self {
            PruningScheme::Cep => "cep",
            PruningScheme::Cnp => "cnp",
            PruningScheme::Wep => "wep",
            PruningScheme::Wnp => "wnp",
            PruningScheme::RedefinedCnp => "redefined-cnp",
            PruningScheme::RedefinedWnp => "redefined-wnp",
            PruningScheme::ReciprocalCnp => "reciprocal-cnp",
            PruningScheme::ReciprocalWnp => "reciprocal-wnp",
        }
    }

    /// Whether the scheme prunes per node (vs per edge).
    pub fn is_node_centric(self) -> bool {
        !matches!(self, PruningScheme::Cep | PruningScheme::Wep)
    }

    /// Whether the scheme can emit the same pair twice (original directed
    /// node-centric semantics).
    pub fn emits_redundant_comparisons(self) -> bool {
        matches!(self, PruningScheme::Cnp | PruningScheme::Wnp)
    }
}

impl fmt::Display for PruningScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for PruningScheme {
    type Err = String;

    /// Parses the CLI token (`cep`, `reciprocal-wnp`, …), case-insensitively
    /// and accepting `_` for `-`.
    fn from_str(s: &str) -> std::result::Result<PruningScheme, String> {
        let canon = s.trim().to_ascii_lowercase().replace('_', "-");
        PruningScheme::ALL
            .into_iter()
            .find(|p| p.token() == canon)
            .ok_or_else(|| format!("unknown pruning scheme '{s}' (try e.g. cep, reciprocal-wnp)"))
    }
}

/// The full configuration of a meta-blocking run — everything needed to
/// reproduce it, round-trippable through JSON.
///
/// ```
/// use mb_core::pipeline::PipelineConfig;
///
/// let cfg: PipelineConfig = "{\"weighting\":\"ecbs\",\"pruning\":\"cep\"}".parse().unwrap();
/// assert_eq!(cfg.weighting, mb_core::WeightingScheme::Ecbs);
/// let back: PipelineConfig = cfg.to_json_string().parse().unwrap();
/// assert_eq!(back, cfg);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// The edge-weighting scheme (§3; default JS).
    pub weighting: WeightingScheme,
    /// The pruning scheme (default Reciprocal WNP, the paper's pick for
    /// effectiveness-intensive applications).
    pub pruning: PruningScheme,
    /// Original (Algorithm 2) or Optimized (Algorithm 3) edge weighting.
    pub weighting_impl: WeightingImpl,
    /// Block Filtering ratio in `(0, 1]`, or `None` to skip filtering.
    pub filter_ratio: Option<f64>,
    /// Worker threads for the parallel pruning paths: 1 = sequential, `n` =
    /// up to `n` workers, 0 = auto-detect the available parallelism. Every
    /// pruning scheme parallelizes under Optimized weighting.
    pub threads: usize,
    /// Whether binaries should attach the human progress printer.
    pub progress: bool,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            weighting: WeightingScheme::Js,
            pruning: PruningScheme::ReciprocalWnp,
            weighting_impl: WeightingImpl::Optimized,
            filter_ratio: None,
            threads: 1,
            progress: false,
        }
    }
}

/// Resolves a raw worker-thread count: `0` means auto-detect via
/// [`std::thread::available_parallelism`] (falling back to 1 when it cannot
/// be determined); any other value is taken as-is.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

impl PipelineConfig {
    /// Checks the invariants a run relies on: filter ratio in `(0, 1]`.
    /// `threads == 0` is valid and means auto-detect
    /// (see [`PipelineConfig::effective_threads`]).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if let Some(r) = self.filter_ratio {
            if !(r > 0.0 && r <= 1.0) {
                return Err(format!("filter ratio {r} outside (0, 1]"));
            }
        }
        Ok(())
    }

    /// The worker-thread count a run actually uses: `threads` itself, or —
    /// when it is 0 — the machine's available parallelism
    /// ([`std::thread::available_parallelism`], falling back to 1 when it
    /// cannot be determined).
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// Serializes to a single-line JSON object.
    pub fn to_json_string(&self) -> String {
        let mut obj = Json::obj();
        obj.push("weighting", Json::Str(self.weighting.token().into()));
        obj.push("pruning", Json::Str(self.pruning.token().into()));
        obj.push("weighting_impl", Json::Str(self.weighting_impl.token().into()));
        obj.push(
            "filter_ratio",
            match self.filter_ratio {
                Some(r) => Json::Num(r),
                None => Json::Null,
            },
        );
        obj.push("threads", Json::Uint(self.threads as u64));
        obj.push("progress", Json::Bool(self.progress));
        obj.render()
    }

    /// Deserializes from JSON. Unknown keys are rejected (a typoed key
    /// silently reverting to a default would corrupt an experiment); absent
    /// keys take their [`Default`] value.
    pub fn from_json_str(s: &str) -> std::result::Result<PipelineConfig, String> {
        let json = Json::parse(s).map_err(|e| format!("config is not valid JSON: {e}"))?;
        let Json::Obj(pairs) = &json else {
            return Err("config must be a JSON object".into());
        };
        let mut cfg = PipelineConfig::default();
        for (key, value) in pairs {
            match key.as_str() {
                "weighting" => {
                    let s = value.as_str().ok_or("'weighting' must be a string")?;
                    cfg.weighting = s.parse()?;
                }
                "pruning" => {
                    let s = value.as_str().ok_or("'pruning' must be a string")?;
                    cfg.pruning = s.parse()?;
                }
                "weighting_impl" => {
                    let s = value.as_str().ok_or("'weighting_impl' must be a string")?;
                    cfg.weighting_impl = s.parse()?;
                }
                "filter_ratio" => {
                    cfg.filter_ratio = match value {
                        Json::Null => None,
                        other => {
                            Some(other.as_f64().ok_or("'filter_ratio' must be a number or null")?)
                        }
                    };
                }
                "threads" => {
                    cfg.threads =
                        value.as_u64().ok_or("'threads' must be a non-negative integer")? as usize;
                }
                "progress" => {
                    cfg.progress = match value {
                        Json::Bool(b) => *b,
                        _ => return Err("'progress' must be a boolean".into()),
                    };
                }
                other => return Err(format!("unknown config key '{other}'")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

impl FromStr for PipelineConfig {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<PipelineConfig, String> {
        PipelineConfig::from_json_str(s)
    }
}

/// Builder for a full meta-blocking run.
///
/// ```
/// use er_blocking::{fixtures, BlockingMethod, TokenBlocking};
/// use mb_core::{MetaBlocking, PruningScheme, WeightingScheme};
///
/// let collection = fixtures::figure1_collection();
/// let blocks = TokenBlocking.build(&collection);
/// let retained = MetaBlocking::new(WeightingScheme::Js, PruningScheme::Wep)
///     .run_collect(&blocks, collection.split())
///     .unwrap();
/// // WEP with the exact mean threshold keeps the 4 strongest edges of
/// // Figure 2(a), both duplicate pairs among them.
/// assert_eq!(retained.len(), 4);
/// ```
///
/// To observe the run, pass any [`Observer`] to [`MetaBlocking::run`]:
///
/// ```
/// use er_blocking::{fixtures, BlockingMethod, TokenBlocking};
/// use mb_core::{MetaBlocking, PruningScheme, WeightingScheme};
/// use mb_observe::RunReport;
///
/// let collection = fixtures::figure1_collection();
/// let blocks = TokenBlocking.build(&collection);
/// let mut report = RunReport::new("doc");
/// let mut n = 0usize;
/// MetaBlocking::new(WeightingScheme::Js, PruningScheme::Wep)
///     .run(&blocks, collection.split(), &mut report, |_a, _b| n += 1)
///     .unwrap();
/// assert_eq!(report.counter_total(mb_observe::Counter::RetainedComparisons), n as u64);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MetaBlocking {
    config: PipelineConfig,
}

impl MetaBlocking {
    /// A pipeline with the given weighting scheme and pruning scheme, no
    /// Block Filtering, Optimized Edge Weighting, one thread.
    pub fn new(scheme: WeightingScheme, pruning: PruningScheme) -> Self {
        MetaBlocking {
            config: PipelineConfig { weighting: scheme, pruning, ..PipelineConfig::default() },
        }
    }

    /// A pipeline executing exactly `config`.
    pub fn from_config(config: PipelineConfig) -> Self {
        MetaBlocking { config }
    }

    /// The full configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Enables Block Filtering with ratio `r` as pre-processing.
    #[must_use]
    pub fn with_block_filtering(mut self, r: f64) -> Self {
        self.config.filter_ratio = Some(r);
        self
    }

    /// Selects the edge-weighting implementation (default: Optimized).
    #[must_use]
    pub fn with_weighting_impl(mut self, imp: WeightingImpl) -> Self {
        self.config.weighting_impl = imp;
        self
    }

    /// Sets the worker-thread count for the parallel pruning paths
    /// (default 1 = sequential; 0 = auto-detect).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// The configured weighting scheme.
    pub fn scheme(&self) -> WeightingScheme {
        self.config.weighting
    }

    /// The configured pruning scheme.
    pub fn pruning(&self) -> PruningScheme {
        self.config.pruning
    }

    /// Runs the pipeline, streaming every retained comparison to `sink` and
    /// per-stage telemetry to `obs`.
    ///
    /// `split` is the Clean-Clean id boundary
    /// ([`er_model::EntityCollection::split`]); for Dirty ER pass the
    /// collection size — [`er_model::EntityCollection::split`] returns
    /// exactly that, so `collection.split()` is always correct.
    ///
    /// Pass [`Noop`] (or any disabled observer) for an unobserved run —
    /// every instrumentation point checks `enabled()` once and touches no
    /// clock or counter when it is false, so the cost is a branch per stage,
    /// not per comparison. Counter totals are deterministic: independent of
    /// the thread count and of whether an observer is attached.
    pub fn run(
        &self,
        blocks: &BlockCollection,
        split: usize,
        obs: &mut dyn Observer,
        sink: impl FnMut(EntityId, EntityId),
    ) -> Result<()> {
        let filtered;
        let input = match self.config.filter_ratio {
            Some(r) => {
                let mut scope = StageScope::enter(obs, Stage::BlockFiltering);
                filtered = block_filtering(blocks, r)?;
                if scope.enabled() {
                    scope.add(Counter::BlocksIn, blocks.size() as u64);
                    scope.add(Counter::BlocksOut, filtered.size() as u64);
                    scope.add(Counter::ComparisonsIn, blocks.total_comparisons());
                    scope.add(Counter::ComparisonsOut, filtered.total_comparisons());
                    scope.add(Counter::AssignmentsIn, blocks.total_assignments());
                    scope.add(Counter::AssignmentsOut, filtered.total_assignments());
                    scope.add(Counter::Entities, blocks.num_entities() as u64);
                }
                scope.finish();
                &filtered
            }
            None => blocks,
        };
        let split = if blocks.kind() == ErKind::Dirty { blocks.num_entities() } else { split };
        let threads = self.config.effective_threads();
        // Building the graph context (entity index) and the weigher's
        // per-scheme statistics is the fixed cost of every graph-based
        // scheme; it reports as the first EdgeWeighting record. The index
        // build itself is sharded across the workers.
        let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
        let ctx = if threads > 1 {
            GraphContext::new_parallel(input, split, threads)
        } else {
            GraphContext::new(input, split)
        };
        let weigher = EdgeWeigher::new(self.config.weighting, &ctx);
        if scope.enabled() {
            scope.add(Counter::Entities, ctx.num_entities() as u64);
            scope.add(Counter::BlocksIn, input.size() as u64);
            scope.add(Counter::ComparisonsIn, input.total_comparisons());
        }
        scope.finish();
        let imp = self.config.weighting_impl;
        // Sanitize mode: validate the pruning input up front, pre-compute
        // the redefined retained-set a reciprocal scheme must stay inside,
        // and check every retained comparison as it streams out.
        #[cfg(feature = "sanitize")]
        let redefined = {
            crate::sanitize::check_pipeline_input(&ctx);
            match self.config.pruning {
                PruningScheme::ReciprocalCnp => {
                    Some(crate::sanitize::redefined_retained_set(true, &ctx, &weigher, imp))
                }
                PruningScheme::ReciprocalWnp => {
                    Some(crate::sanitize::redefined_retained_set(false, &ctx, &weigher, imp))
                }
                _ => None,
            }
        };
        #[cfg(not(feature = "sanitize"))]
        let mut sink = sink;
        #[cfg(feature = "sanitize")]
        let mut sink = {
            let ctx = &ctx;
            let mut inner = sink;
            move |a: EntityId, b: EntityId| {
                crate::sanitize::check_retained(ctx, a, b, redefined.as_ref());
                inner(a, b)
            }
        };
        // The parallel path: every scheme's chunked sweeps distribute
        // cleanly under Optimized weighting and reproduce the sequential
        // output (and counters) bit for bit.
        if threads > 1 && imp == WeightingImpl::Optimized {
            crate::parallel::run_pruning_observed(
                self.config.pruning,
                &ctx,
                &weigher,
                threads,
                obs,
                &mut sink,
            );
            return Ok(());
        }
        match self.config.pruning {
            PruningScheme::Cep => prune::cep(&ctx, &weigher, imp, obs, &mut sink),
            PruningScheme::Cnp => prune::cnp(&ctx, &weigher, imp, obs, &mut sink),
            PruningScheme::Wep => prune::wep(&ctx, &weigher, imp, obs, &mut sink),
            PruningScheme::Wnp => prune::wnp(&ctx, &weigher, imp, obs, &mut sink),
            PruningScheme::RedefinedCnp => {
                prune::redefined_cnp(&ctx, &weigher, imp, obs, &mut sink)
            }
            PruningScheme::RedefinedWnp => {
                prune::redefined_wnp(&ctx, &weigher, imp, obs, &mut sink)
            }
            PruningScheme::ReciprocalCnp => {
                prune::reciprocal_cnp(&ctx, &weigher, imp, obs, &mut sink)
            }
            PruningScheme::ReciprocalWnp => {
                prune::reciprocal_wnp(&ctx, &weigher, imp, obs, &mut sink)
            }
        }
        Ok(())
    }

    /// Runs the pipeline unobserved and collects the retained comparisons.
    ///
    /// For the original node-centric schemes the result may contain the same
    /// pair twice (their documented redundancy); every other scheme yields
    /// distinct pairs.
    pub fn run_collect(
        &self,
        blocks: &BlockCollection,
        split: usize,
    ) -> Result<Vec<(EntityId, EntityId)>> {
        let mut out = Vec::new();
        self.run(blocks, split, &mut Noop, |a, b| out.push((a, b)))?;
        Ok(out)
    }
}

/// Convenience wrapper for the graph-free workflow, mirroring
/// [`MetaBlocking::run`].
pub fn run_graph_free(
    blocks: &BlockCollection,
    split: usize,
    r: f64,
    obs: &mut dyn Observer,
    sink: impl FnMut(EntityId, EntityId),
) -> Result<()> {
    run_graph_free_threads(blocks, split, r, 1, obs, sink)
}

/// [`run_graph_free`] on up to `threads` workers (`0` = auto-detect):
/// parallel entity-index build and propagation sweep, output and counters
/// bit-identical to the sequential run.
pub fn run_graph_free_threads(
    blocks: &BlockCollection,
    split: usize,
    r: f64,
    threads: usize,
    obs: &mut dyn Observer,
    sink: impl FnMut(EntityId, EntityId),
) -> Result<()> {
    let split = if blocks.kind() == ErKind::Dirty { blocks.num_entities() } else { split };
    graph_free_meta_blocking_threads(blocks, split, r, threads, obs, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, GroundTruth};
    use mb_observe::{RingLog, RunReport, StageEvent};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[2, 3])),
            ],
        )
    }

    #[test]
    fn scheme_metadata() {
        assert_eq!(PruningScheme::Cep.name(), "CEP");
        assert!(!PruningScheme::Cep.is_node_centric());
        assert!(PruningScheme::ReciprocalWnp.is_node_centric());
        assert!(PruningScheme::Cnp.emits_redundant_comparisons());
        assert!(!PruningScheme::RedefinedCnp.emits_redundant_comparisons());
        assert_eq!(PruningScheme::ORIGINAL.len(), 4);
        assert_eq!(PruningScheme::ENHANCED.len(), 4);
    }

    #[test]
    fn pruning_scheme_round_trips_through_strings() {
        for p in PruningScheme::ALL {
            assert_eq!(p.to_string().parse::<PruningScheme>().unwrap(), p);
        }
        assert_eq!(
            "Reciprocal_WNP".parse::<PruningScheme>().unwrap(),
            PruningScheme::ReciprocalWnp
        );
        assert!("cnp2".parse::<PruningScheme>().is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = PipelineConfig {
            weighting: WeightingScheme::Ecbs,
            pruning: PruningScheme::RedefinedCnp,
            weighting_impl: WeightingImpl::Original,
            filter_ratio: Some(0.55),
            threads: 8,
            progress: true,
        };
        let json = cfg.to_json_string();
        assert_eq!(PipelineConfig::from_json_str(&json).unwrap(), cfg);
        // Default round-trips too (filter_ratio = null path).
        let def = PipelineConfig::default();
        assert_eq!(def.to_json_string().parse::<PipelineConfig>().unwrap(), def);
    }

    #[test]
    fn config_rejects_bad_input() {
        assert!(PipelineConfig::from_json_str("{\"weighting\":\"zzz\"}").is_err());
        assert!(PipelineConfig::from_json_str("{\"filter_ratio\":2.0}").is_err());
        assert!(PipelineConfig::from_json_str("{\"threads\":-1}").is_err());
        assert!(PipelineConfig::from_json_str("{\"no_such_key\":1}").is_err());
        assert!(PipelineConfig::from_json_str("[1,2]").is_err());
        // Partial configs fill in defaults.
        let cfg = PipelineConfig::from_json_str("{\"pruning\":\"cep\"}").unwrap();
        assert_eq!(cfg.pruning, PruningScheme::Cep);
        assert_eq!(cfg.weighting, WeightingScheme::Js);
    }

    #[test]
    fn threads_zero_means_auto_detect() {
        // `"threads": 0` is accepted and resolves to the machine's available
        // parallelism at run time, never to 0 workers.
        let cfg = PipelineConfig::from_json_str("{\"threads\":0}").unwrap();
        assert_eq!(cfg.threads, 0);
        assert!(cfg.validate().is_ok());
        assert!(cfg.effective_threads() >= 1);
        // Round-trips: the stored (not the resolved) value is serialized.
        let back: PipelineConfig = cfg.to_json_string().parse().unwrap();
        assert_eq!(back.threads, 0);
        // Explicit counts pass through unchanged.
        let four = PipelineConfig { threads: 4, ..PipelineConfig::default() };
        assert_eq!(four.effective_threads(), 4);
        // The builder keeps 0 as auto rather than clamping it away.
        assert_eq!(MetaBlocking::default().with_threads(0).config().threads, 0);
    }

    /// Every scheme routed through the parallel path produces the same
    /// output as the sequential pipeline (threads = 1), for both ER kinds.
    #[test]
    fn parallel_pipeline_matches_sequential_for_every_scheme() {
        let dirty = fixture();
        let clean = BlockCollection::new(
            ErKind::CleanClean,
            6,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[3, 4])),
                Block::clean_clean(ids(&[0]), ids(&[3])),
                Block::clean_clean(ids(&[2]), ids(&[5])),
            ],
        );
        for (blocks, split) in [(&dirty, 4usize), (&clean, 3usize)] {
            for pruning in PruningScheme::ALL {
                let seq = MetaBlocking::new(WeightingScheme::Js, pruning)
                    .run_collect(blocks, split)
                    .unwrap();
                for threads in [2, 8] {
                    let par = MetaBlocking::new(WeightingScheme::Js, pruning)
                        .with_threads(threads)
                        .run_collect(blocks, split)
                        .unwrap();
                    assert_eq!(par, seq, "{} x{threads}", pruning.name());
                }
            }
        }
    }

    #[test]
    fn every_configuration_runs() {
        let blocks = fixture();
        for scheme in WeightingScheme::ALL {
            for pruning in PruningScheme::ALL {
                for imp in [WeightingImpl::Original, WeightingImpl::Optimized] {
                    let out = MetaBlocking::new(scheme, pruning)
                        .with_weighting_impl(imp)
                        .run_collect(&blocks, 4)
                        .unwrap();
                    assert!(!out.is_empty(), "{} + {}", scheme.name(), pruning.name());
                }
            }
        }
    }

    #[test]
    fn original_and_optimized_impls_agree() {
        let blocks = fixture();
        for scheme in WeightingScheme::ALL {
            for pruning in PruningScheme::ALL {
                let a = MetaBlocking::new(scheme, pruning)
                    .with_weighting_impl(WeightingImpl::Original)
                    .run_collect(&blocks, 4)
                    .unwrap();
                let b = MetaBlocking::new(scheme, pruning)
                    .with_weighting_impl(WeightingImpl::Optimized)
                    .run_collect(&blocks, 4)
                    .unwrap();
                let norm = |v: &[(EntityId, EntityId)]| {
                    let mut v: Vec<(u32, u32)> =
                        v.iter().map(|&(x, y)| (x.0.min(y.0), x.0.max(y.0))).collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(norm(&a), norm(&b), "{} + {}", scheme.name(), pruning.name());
            }
        }
    }

    #[test]
    fn block_filtering_is_applied_first() {
        let blocks = fixture();
        // CEP's K = ⌊Σ|b|/2⌋ shrinks with the filtered assignments, so its
        // output cannot grow under Block Filtering.
        let unfiltered = MetaBlocking::new(WeightingScheme::Cbs, PruningScheme::Cep)
            .run_collect(&blocks, 4)
            .unwrap();
        let filtered = MetaBlocking::new(WeightingScheme::Cbs, PruningScheme::Cep)
            .with_block_filtering(0.5)
            .run_collect(&blocks, 4)
            .unwrap();
        assert!(filtered.len() < unfiltered.len());
    }

    #[test]
    fn invalid_filter_ratio_propagates() {
        let blocks = fixture();
        let res = MetaBlocking::new(WeightingScheme::Js, PruningScheme::Wep)
            .with_block_filtering(2.0)
            .run_collect(&blocks, 4);
        assert!(res.is_err());
    }

    #[test]
    fn pruning_keeps_the_duplicates() {
        // The strongest edge is the duplicate pair; every scheme must keep it.
        let blocks = fixture();
        let gt = GroundTruth::from_pairs(vec![(EntityId(0), EntityId(1))]);
        for pruning in PruningScheme::ALL {
            let out =
                MetaBlocking::new(WeightingScheme::Js, pruning).run_collect(&blocks, 4).unwrap();
            assert!(
                out.iter().any(|&(a, b)| gt.are_duplicates(a, b)),
                "{} lost the duplicate",
                pruning.name()
            );
        }
    }

    #[test]
    fn graph_free_runs() {
        let blocks = fixture();
        let mut n = 0;
        run_graph_free(&blocks, 4, 0.5, &mut Noop, |_, _| n += 1).unwrap();
        assert!(n > 0);
    }

    #[test]
    fn clean_clean_pipeline_respects_the_split() {
        // Blocks crossing a split at 3: left {0,1,2}, right {3,4,5}.
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            6,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[3, 4])),
                Block::clean_clean(ids(&[0]), ids(&[3])),
                Block::clean_clean(ids(&[2]), ids(&[5])),
            ],
        );
        for scheme in WeightingScheme::ALL {
            for pruning in PruningScheme::ALL {
                let out = MetaBlocking::new(scheme, pruning).run_collect(&blocks, 3).unwrap();
                assert!(!out.is_empty(), "{} + {}", scheme.name(), pruning.name());
                for (a, b) in out {
                    assert!(
                        (a.idx() < 3) != (b.idx() < 3),
                        "{} + {}: intra-collection pair {a}-{b}",
                        scheme.name(),
                        pruning.name()
                    );
                }
            }
        }
    }

    #[test]
    fn strongest_clean_clean_edge_always_survives() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            6,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[3, 4])),
                Block::clean_clean(ids(&[0]), ids(&[3])),
                Block::clean_clean(ids(&[0, 2]), ids(&[3, 5])),
            ],
        );
        // (0,3) shares all three blocks: the strongest edge under the
        // schemes that reward raw co-occurrence. (ECBS/EJS legitimately
        // discount it to zero — profile 0 sits in every block, so it
        // carries no discriminating signal under their logarithms.)
        for scheme in [WeightingScheme::Arcs, WeightingScheme::Cbs, WeightingScheme::Js] {
            for pruning in PruningScheme::ALL {
                let out = MetaBlocking::new(scheme, pruning).run_collect(&blocks, 3).unwrap();
                assert!(
                    out.iter().any(|&(a, b)| (a.0, b.0) == (0, 3) || (b.0, a.0) == (0, 3)),
                    "{} + {} lost the strongest edge",
                    scheme.name(),
                    pruning.name()
                );
            }
        }
    }

    /// The acceptance criterion on event order: stages observe in the
    /// Figure 7(a) sequence — Block Filtering, Edge Weighting, Pruning —
    /// with balanced Enter/Exit pairs (scopes never nest).
    #[test]
    fn observer_sees_figure7_stage_order() {
        let blocks = fixture();
        for pruning in PruningScheme::ALL {
            let mut log = RingLog::new(64);
            MetaBlocking::new(WeightingScheme::Js, pruning)
                .with_block_filtering(0.8)
                .run(&blocks, 4, &mut log, |_, _| {})
                .unwrap();
            let exits = log.exit_order();
            assert_eq!(exits.first(), Some(&Stage::BlockFiltering), "{}", pruning.name());
            assert_eq!(exits.last(), Some(&Stage::Pruning), "{}", pruning.name());
            // Workflow-rank monotone: filtering ≤ weighting ≤ pruning.
            for w in exits.windows(2) {
                assert!(
                    w[0].workflow_rank() <= w[1].workflow_rank(),
                    "{}: {:?} after {:?}",
                    pruning.name(),
                    w[1],
                    w[0]
                );
            }
            // Scopes are sequential: an Enter is always followed by its own
            // Exit before the next Enter.
            let mut open: Option<Stage> = None;
            for ev in log.events() {
                match ev {
                    StageEvent::Enter(s) => {
                        assert!(open.is_none(), "nested Enter({s})");
                        open = Some(s);
                    }
                    StageEvent::Exit(s, _) => {
                        assert_eq!(open.take(), Some(s), "unbalanced Exit({s})");
                    }
                }
            }
            assert!(open.is_none());
        }
    }

    /// Counter totals are exact for every scheme: retained_comparisons
    /// equals the number of sink invocations.
    #[test]
    fn retained_counter_matches_sink_for_every_scheme() {
        let blocks = fixture();
        for scheme in WeightingScheme::ALL {
            for pruning in PruningScheme::ALL {
                let mut report = RunReport::new("test");
                let mut n = 0u64;
                MetaBlocking::new(scheme, pruning)
                    .run(&blocks, 4, &mut report, |_, _| n += 1)
                    .unwrap();
                assert_eq!(
                    report.counter_total(Counter::RetainedComparisons),
                    n,
                    "{} + {}",
                    scheme.name(),
                    pruning.name()
                );
            }
        }
    }

    /// The filtering stage reports the block/comparison/assignment shrink.
    #[test]
    fn filtering_stage_reports_shrink() {
        let blocks = fixture();
        let mut report = RunReport::new("test");
        MetaBlocking::new(WeightingScheme::Cbs, PruningScheme::Cep)
            .with_block_filtering(0.5)
            .run(&blocks, 4, &mut report, |_, _| {})
            .unwrap();
        let rec = report.stage(Stage::BlockFiltering).expect("filtering record");
        assert_eq!(rec.counters.get(Counter::BlocksIn), 3);
        assert!(
            rec.counters.get(Counter::AssignmentsOut) < rec.counters.get(Counter::AssignmentsIn)
        );
        assert_eq!(rec.counters.get(Counter::Entities), 4);
    }
}
