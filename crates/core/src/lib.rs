//! # mb-core — Enhanced Meta-blocking
//!
//! The primary contribution of *"Scaling Entity Resolution to Large,
//! Heterogeneous Data with Enhanced Meta-blocking"* (Papadakis,
//! Papastefanatos, Palpanas, Koubarakis — EDBT 2016), implemented in full:
//!
//! **The meta-blocking framework it builds on** (Papadakis et al., TKDE'14):
//!
//! * the *blocking graph* — implicit, never materialized: a vertex per
//!   profile, an edge per co-occurring pair ([`GraphContext`]);
//! * five edge-[`WeightingScheme`]s: ARCS, CBS, ECBS, JS, EJS (Figure 4);
//! * four pruning schemes: [`prune::cep`], [`prune::cnp`], [`prune::wep`],
//!   [`prune::wnp`] (original, directed node-centric semantics).
//!
//! **The paper's efficiency contributions** (§4):
//!
//! * [`filter::block_filtering`] — Algorithm 1: drop each profile from its
//!   least important blocks before building the graph;
//! * [`weighting`] — Algorithm 3 (*Optimized Edge Weighting*, a
//!   ScanCount-style neighborhood scan) next to Algorithm 2 (*Original Edge
//!   Weighting*, per-comparison posting-list intersection with the LeCoBI
//!   early exit), kept side by side so the Table-5 speedup can be measured.
//!
//! **The paper's precision contributions** (§5):
//!
//! * [`prune::redefined_cnp`] / [`prune::redefined_wnp`] — Algorithms 4 and
//!   5: retain an edge if it satisfies the criterion of *either* endpoint;
//!   no redundant comparisons;
//! * [`prune::reciprocal_cnp`] / [`prune::reciprocal_wnp`] — retain an edge
//!   only if it satisfies *both* endpoints (reciprocal links).
//!
//! **The graph-free alternatives** (§4.1, Figure 7b):
//!
//! * [`propagation::comparison_propagation`] — distinct comparisons via the
//!   LeCoBI condition;
//! * [`graphfree::graph_free_meta_blocking`] — Block Filtering followed by
//!   Comparison Propagation, skipping the graph entirely.
//!
//! The high-level entry point is [`pipeline::MetaBlocking`], a builder that
//! assembles any combination of the above — configurable through
//! [`pipeline::PipelineConfig`] (JSON round-trippable) and observable
//! through the `mb-observe` [`Observer`] interface (pass [`Noop`] for an
//! unobserved run; instrumentation is a per-stage branch, never a per-edge
//! cost). Beyond the paper:
//!
//! * [`incremental`] adapts the techniques to Incremental ER — the future
//!   work its conclusion announces;
//! * [`progressive`] turns CEP's global ranking into a pay-as-you-go
//!   comparison schedule;
//! * [`parallel`] runs the graph sweeps across threads with bit-identical
//!   output (the shared-memory analog of the MapReduce scale-out the paper
//!   cites);
//! * [`blast`] implements the χ²-weighted, max-ratio-pruned follow-on
//!   (Simonini et al., VLDB'16) for cross-comparison.
//!
//! ## Output convention
//!
//! Meta-blocking restructures a block collection into a *comparison
//! collection*: pruning emits each retained comparison to a sink
//! (`FnMut(EntityId, EntityId)`). The original node-centric schemes emit a
//! pair twice when both endpoints retain it — that *is* their documented
//! redundancy, and the pessimistic `‖B′‖` accounting of the paper counts it.

//! ## Invariant sanitizing
//!
//! Built with the `sanitize` cargo feature, every pipeline run validates
//! its input (blocks, entity index, LeCoBI consistency, Clean-Clean split)
//! and checks each streamed edge and retained comparison on the fly — see
//! the `sanitize` module. The feature is off by default; `crates/bench`
//! measures the unchecked paths.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod blast;
pub mod context;
pub mod filter;
pub mod graphfree;
pub mod incremental;
pub mod parallel;
pub mod pipeline;
pub mod progressive;
pub mod propagation;
pub mod prune;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod scanner;
pub mod scorer;
pub mod sharded;
pub mod store;
pub mod weighting;
pub mod weights;

pub use context::GraphContext;
pub use mb_observe::{Noop, Observer};
pub use pipeline::{MetaBlocking, PipelineConfig, PruningScheme, WeightingImpl};
pub use scorer::{Candidate, NeighborhoodScorer, Retention, Scored};
pub use sharded::ShardedScorer;
pub use store::CandidateStore;
pub use weights::WeightingScheme;
