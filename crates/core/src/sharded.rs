//! Entity-range sharded neighborhood scoring.
//!
//! [`ShardedScorer`] partitions the blocking graph's *neighbor space* into
//! `N` contiguous entity-id ranges. Construction cuts every block's member
//! runs at the shard boundaries in parallel; a query then scans each
//! shard's slice of the pivot's blocks independently (fanning out over up
//! to `threads` workers) and merges the per-shard neighborhoods back into
//! the exact single-arena discovery order.
//!
//! ## Why the merge is bit-identical
//!
//! The flat scanner visits the pivot's blocks in block-list order and each
//! block's members in ascending-id order, so a neighbor `j`'s accumulated
//! score is an IEEE float sum in block-list order — and every neighbor
//! belongs to exactly one shard, whose scan walks the same blocks in the
//! same order. Per-neighbor sums are therefore bit-identical to the flat
//! scan. The flat *discovery order* (first co-occurrence) sorts neighbors
//! by `(first block position, id)`: within one block's ascending member
//! run, unseen neighbors surface in ascending id order. Packing that pair
//! into one `u64` key and sorting the merged shard outputs reconstructs
//! the flat order exactly, so retention — including the order-sensitive
//! `AboveMean` mean — sees the same ids and weights in the same sequence
//! for any shard count and any thread count.

use crate::scorer::{retain, Candidate, Retention, Scored};
use crate::store::CandidateStore;
use crate::weights::{edge_weight, Degrees, WeightingScheme};
use er_model::{chunk_ranges, EntityId};

/// Chunk floor for the parallel boundary-cut construction sweep.
const MIN_BLOCKS_PER_CHUNK: usize = 256;

/// Per-shard epoch scratch, sized to the shard's id range.
#[derive(Debug)]
struct ShardScratch {
    flags: Vec<u32>,
    score: Vec<f64>,
    tick: u32,
}

impl ShardScratch {
    fn new(len: usize) -> Self {
        ShardScratch { flags: vec![0; len], score: vec![0.0; len], tick: 0 }
    }

    fn advance(&mut self) -> u32 {
        self.tick = self.tick.wrapping_add(1);
        if self.tick == 0 {
            self.flags.fill(0);
            self.tick = 1;
        }
        self.tick
    }
}

/// A sharded-arena neighborhood scorer over any [`CandidateStore`].
///
/// Equivalent to [`crate::NeighborhoodScorer::query`] for every pivot,
/// retention, shard count and thread count — the sharding changes the
/// execution plan, never the answer.
#[derive(Debug)]
pub struct ShardedScorer<S> {
    store: S,
    scheme: WeightingScheme,
    degrees: Option<Degrees>,
    /// Shard boundaries over the entity-id space: `num_shards + 1` entries,
    /// `bounds[0] == 0`, `bounds[num_shards] == |E|`.
    bounds: Vec<u32>,
    /// Left-side member cuts, block-major: entry `k * (N + 1) + s` is the
    /// offset within block `k`'s left run where shard `s` begins.
    cuts_left: Vec<u32>,
    /// Right-side member cuts, same layout (all zero for Dirty ER, whose
    /// blocks keep every member on the left).
    cuts_right: Vec<u32>,
    scratch: Vec<ShardScratch>,
    threads: usize,
    /// Owned copy of the pivot's block list, shared read-only by workers.
    list: Vec<u32>,
    ids: Vec<u32>,
    weights: Vec<f64>,
}

impl<S: CandidateStore + Sync> ShardedScorer<S> {
    /// Builds a scorer with `num_shards` entity-range shards, cutting the
    /// block arenas in parallel over up to `threads` workers.
    ///
    /// Shard and thread counts are clamped to at least 1; shards beyond the
    /// entity count are simply empty.
    pub fn new(store: S, scheme: WeightingScheme, num_shards: usize, threads: usize) -> Self {
        let n = store.num_entities();
        let shards = num_shards.max(1);
        let threads = threads.max(1);
        // Even id-range partition; u32 arithmetic is safe because entity
        // ids are dense u32s.
        let bounds: Vec<u32> =
            (0..=shards).map(|s| ((s as u64 * n as u64) / shards as u64) as u32).collect();
        let num_blocks = store.num_blocks();
        let cuts_left = build_cuts(&store, &bounds, num_blocks, false, threads);
        let cuts_right = build_cuts(&store, &bounds, num_blocks, true, threads);
        let degrees = scheme.needs_degrees().then(|| Degrees::compute(&store));
        let scratch =
            (0..shards).map(|s| ShardScratch::new((bounds[s + 1] - bounds[s]) as usize)).collect();
        ShardedScorer {
            store,
            scheme,
            degrees,
            bounds,
            cuts_left,
            cuts_right,
            scratch,
            threads,
            list: Vec::new(),
            ids: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// The store being queried.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The number of entity-range shards.
    pub fn num_shards(&self) -> usize {
        self.scratch.len()
    }

    /// The weighting scheme every query evaluates.
    pub fn scheme(&self) -> WeightingScheme {
        self.scheme
    }

    /// Scores the neighborhood of one indexed entity, fanning the shards
    /// out over the scorer's worker budget, and retains candidates exactly
    /// like [`crate::NeighborhoodScorer::query`].
    pub fn query(&mut self, pivot: EntityId, retention: Retention) -> Scored {
        self.list.clear();
        self.store.block_list(pivot).for_each(|k| self.list.push(k));
        let scan_right = self.store.scan_right(pivot);
        let arcs = self.scheme.accumulate() == crate::scanner::Accumulate::ReciprocalCardinalities;
        let shards = self.scratch.len();
        let stride = shards + 1;
        let cuts = if scan_right { &self.cuts_right } else { &self.cuts_left };
        let (store, bounds, list) = (&self.store, &self.bounds, &self.list);

        let run_shard = move |s: usize, scratch: &mut ShardScratch| -> Vec<u64> {
            let tick = scratch.advance();
            let base = bounds[s];
            let mut found: Vec<u64> = Vec::new();
            for (pos, &k) in list.iter().enumerate() {
                let increment = if arcs { store.recip_cardinality_of(k as usize) } else { 1.0 };
                let side = store.members_of(k as usize, scan_right);
                let at = k as usize * stride + s;
                let (lo, hi) = (cuts[at] as usize, cuts[at + 1] as usize);
                side.slice(lo, hi).for_each(|j| {
                    if j == pivot.0 {
                        return;
                    }
                    let local = (j - base) as usize;
                    if scratch.flags[local] != tick {
                        scratch.flags[local] = tick;
                        scratch.score[local] = 0.0;
                        found.push(((pos as u64) << 32) | j as u64);
                    }
                    scratch.score[local] += increment;
                });
            }
            found
        };

        let per_shard: Vec<Vec<u64>> = if self.threads <= 1 || shards <= 1 {
            self.scratch.iter_mut().enumerate().map(|(s, sc)| run_shard(s, sc)).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .scratch
                    .iter_mut()
                    .enumerate()
                    .map(|(s, sc)| scope.spawn(move || run_shard(s, sc)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            })
        };

        // Merge: sorting the packed (first block position, id) keys across
        // shards reconstructs the flat scanner's discovery order.
        let mut keys: Vec<u64> = per_shard.iter().flatten().copied().collect();
        keys.sort_unstable();
        self.ids.clear();
        self.weights.clear();
        for &key in &keys {
            let j = key as u32;
            let s = shard_of(&self.bounds, j);
            let score = self.scratch[s].score[(j - self.bounds[s]) as usize];
            self.ids.push(j);
            self.weights.push(edge_weight(
                self.scheme,
                &self.store,
                self.degrees.as_ref(),
                pivot,
                EntityId(j),
                score,
            ));
        }
        Scored {
            candidates: retain(pivot, &self.ids, &self.weights, retention),
            blocks_touched: self.list.len() as u64,
            edges_scored: self.ids.len() as u64,
        }
    }

    /// Retained candidates of the whole-neighborhood ranking — a
    /// convenience wrapper matching the flat scorer's result shape for
    /// equivalence pinning.
    pub fn top_candidates(&mut self, pivot: EntityId, k: usize) -> Vec<Candidate> {
        self.query(pivot, Retention::TopK(k)).candidates
    }
}

/// The shard whose id range contains `j`.
fn shard_of(bounds: &[u32], j: u32) -> usize {
    // partition_point over the N+1 ascending bounds; j < bounds.last()
    // because ids are in range, so the result is a valid shard index.
    bounds.partition_point(|&b| b <= j) - 1
}

/// Cuts every block's member run (one side) at the shard boundaries, in
/// parallel over block chunks. Entry `k * (N + 1) + s` is the first offset
/// of block `k`'s run whose id is `>= bounds[s]`; consecutive entries
/// bracket shard `s`'s slice. Pure per-block computation, so the parallel
/// sweep is deterministic.
fn build_cuts<S: CandidateStore + Sync>(
    store: &S,
    bounds: &[u32],
    num_blocks: usize,
    right: bool,
    threads: usize,
) -> Vec<u32> {
    let stride = bounds.len();
    let ranges = chunk_ranges(num_blocks, threads, MIN_BLOCKS_PER_CHUNK);
    let cut_range = |range: std::ops::Range<usize>| -> Vec<u32> {
        let mut out = Vec::with_capacity(range.len() * stride);
        for k in range {
            let side = store.members_of(k, right);
            for &b in bounds {
                // Members ascend within a side, so lower_bound brackets the
                // shard's id range.
                out.push(side.lower_bound(b) as u32);
            }
        }
        out
    };
    if ranges.len() <= 1 {
        return ranges.into_iter().flat_map(cut_range).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(move || cut_range(r))).collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::GraphContext;
    use crate::scorer::NeighborhoodScorer;
    use er_model::{Block, BlockCollection, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture(n: usize) -> BlockCollection {
        let mut blocks = Vec::new();
        for b in 0..n {
            let base = b as u32;
            blocks.push(Block::dirty(ids(&[
                base % n as u32,
                (base * 7 + 1) % n as u32,
                (base * 13 + 2) % n as u32,
            ])));
        }
        // Block members must be ascending and distinct; normalize.
        let blocks: Vec<Block> = blocks
            .into_iter()
            .filter_map(|b| {
                let mut m: Vec<u32> = b.left().iter().map(|e| e.0).collect();
                m.sort_unstable();
                m.dedup();
                (m.len() >= 2).then(|| Block::dirty(ids(&m)))
            })
            .collect();
        BlockCollection::new(ErKind::Dirty, n, blocks)
    }

    fn clean_fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::CleanClean,
            10,
            vec![
                Block::clean_clean(ids(&[0, 1, 3]), ids(&[5, 6, 9])),
                Block::clean_clean(ids(&[0, 2]), ids(&[6, 7])),
                Block::clean_clean(ids(&[1, 4]), ids(&[5, 8, 9])),
            ],
        )
    }

    #[test]
    fn sharded_query_matches_flat_for_every_scheme_and_shard_count() {
        let dirty = fixture(40);
        let clean = clean_fixture();
        for (blocks, split) in [(&dirty, 40usize), (&clean, 5)] {
            for scheme in WeightingScheme::ALL {
                let flat_ctx = GraphContext::new(blocks, split);
                let mut flat = NeighborhoodScorer::from_context(flat_ctx, scheme);
                for shards in [1, 2, 3, 7] {
                    for threads in [1, 2] {
                        let ctx = GraphContext::new(blocks, split);
                        let mut sharded = ShardedScorer::new(ctx, scheme, shards, threads);
                        for pivot in 0..blocks.num_entities() as u32 {
                            for retention in [Retention::TopK(2), Retention::AboveMean] {
                                let a = flat.query(EntityId(pivot), retention);
                                let b = sharded.query(EntityId(pivot), retention);
                                assert_eq!(
                                    a, b,
                                    "{scheme:?} shards={shards} threads={threads} \
                                     pivot={pivot} {retention:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shard_of_brackets_ids() {
        let bounds = [0u32, 3, 3, 8, 10];
        assert_eq!(shard_of(&bounds, 0), 0);
        assert_eq!(shard_of(&bounds, 2), 0);
        // Shard 1 is empty (3..3); id 3 belongs to shard 2.
        assert_eq!(shard_of(&bounds, 3), 2);
        assert_eq!(shard_of(&bounds, 9), 3);
    }

    #[test]
    fn more_shards_than_entities_is_fine() {
        let blocks = BlockCollection::new(
            ErKind::Dirty,
            3,
            vec![Block::dirty(ids(&[0, 1, 2])), Block::dirty(ids(&[0, 2]))],
        );
        let ctx = GraphContext::new_dirty(&blocks);
        let mut sharded = ShardedScorer::new(ctx, WeightingScheme::Cbs, 16, 2);
        assert_eq!(sharded.num_shards(), 16);
        let scored = sharded.query(EntityId(0), Retention::TopK(10));
        let got: Vec<u32> = scored.candidates.iter().map(|c| c.id.0).collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&1) && got.contains(&2));
    }
}
