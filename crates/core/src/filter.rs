//! Block Filtering (Algorithm 1) — the paper's graph-shrinking
//! pre-processing step.
//!
//! "Each block has a different importance for every entity profile it
//! contains": Block Filtering keeps each profile only in the `r·|B_i|` most
//! important of its blocks, where importance is inverse block cardinality
//! ("the less comparisons a block contains, the more important it is for its
//! entities"). The restructured collection discards most of the blocking
//! graph's noisy edges at negligible recall cost (§6.2: with `r = 0.8`,
//! `‖B‖` drops by 64–75% while PC drops by less than 0.5%).

use er_model::{BlockCollection, BlockCollectionBuilder, Error, Result};

/// The filtering ratio the paper fine-tunes to in §6.2 for the
/// pre-processing workflow.
pub const DEFAULT_RATIO: f64 = 0.8;

/// Applies Block Filtering with ratio `r ∈ (0, 1]` and returns the
/// restructured collection.
///
/// Steps (Algorithm 1): order blocks by descending importance (ascending
/// cardinality, stable for determinism); compute the per-profile limit
/// `max(1, round(r·|B_i|))`; stream the blocks in order, dropping each
/// profile once its limit is exhausted; keep blocks that still entail at
/// least one comparison.
///
/// The per-profile *local* threshold is essential: a global one "exhibits
/// low performance, as the number of blocks associated with every profile
/// varies largely" (§4.1) — the ablation experiment
/// `ablation_global_threshold` quantifies that claim.
///
/// ```
/// use er_blocking::{fixtures, BlockingMethod, TokenBlocking};
/// use mb_core::filter::block_filtering;
///
/// let blocks = TokenBlocking.build(&fixtures::figure1_collection());
/// assert_eq!(blocks.total_comparisons(), 13);
/// let filtered = block_filtering(&blocks, 0.5).unwrap();
/// assert!(filtered.total_comparisons() < 13);
/// ```
pub fn block_filtering(blocks: &BlockCollection, r: f64) -> Result<BlockCollection> {
    block_filtering_with_order(blocks, r, BlockOrder::AscendingCardinality)
}

/// The block-importance criterion of Block Filtering — which blocks a
/// profile is retained in first.
///
/// The paper's criterion is [`BlockOrder::AscendingCardinality`]; the other
/// orders exist for the `ablation_block_order` experiment that quantifies
/// how much the criterion matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOrder {
    /// Smallest blocks first — "the less comparisons a block contains, the
    /// more important it is for its entities" (the paper's choice).
    AscendingCardinality,
    /// Largest blocks first — the adversarial inversion.
    DescendingCardinality,
    /// The collection's existing order — no importance signal at all.
    Input,
}

/// [`block_filtering`] with an explicit block-importance order.
pub fn block_filtering_with_order(
    blocks: &BlockCollection,
    r: f64,
    order_by: BlockOrder,
) -> Result<BlockCollection> {
    if !(r > 0.0 && r <= 1.0) {
        return Err(Error::InvalidRatio { param: "r", value: r });
    }
    // Per-profile limits: round(r · |B_i|), at least 1 so no profile
    // disappears from the blocks entirely.
    let counts = blocks.assignments_per_entity();
    let limits: Vec<u32> = counts
        .iter()
        .map(|&c| if c == 0 { 0 } else { ((r * c as f64).round() as u32).max(1) })
        .collect();
    Ok(filter_with_limits(blocks, order_by, &limits))
}

/// Like [`block_filtering`], but also reports provenance: `trace[k]` is the
/// index in `blocks` that produced output block `k`.
///
/// The serving layer uses the trace to carry per-block token keys from the
/// blocking front-end through filtering into a snapshot, so an online probe
/// can map a token straight to its surviving block.
pub fn block_filtering_traced(
    blocks: &BlockCollection,
    r: f64,
) -> Result<(BlockCollection, Vec<u32>)> {
    if !(r > 0.0 && r <= 1.0) {
        return Err(Error::InvalidRatio { param: "r", value: r });
    }
    let counts = blocks.assignments_per_entity();
    let limits: Vec<u32> = counts
        .iter()
        .map(|&c| if c == 0 { 0 } else { ((r * c as f64).round() as u32).max(1) })
        .collect();
    let mut trace = Vec::new();
    let out = filter_with_limits_traced(
        blocks,
        BlockOrder::AscendingCardinality,
        &limits,
        Some(&mut trace),
    );
    Ok((out, trace))
}

/// The global-threshold ablation of §4.1: every profile keeps its first
/// `limit` block assignments (blocks ordered by ascending cardinality),
/// regardless of how many blocks it appears in.
///
/// Exists to demonstrate *why* the per-profile threshold is the right
/// design; not part of the recommended pipeline.
pub fn block_filtering_global(blocks: &BlockCollection, limit: u32) -> Result<BlockCollection> {
    if limit == 0 {
        return Err(Error::ZeroParameter("limit"));
    }
    let limits = vec![limit; blocks.num_entities()];
    Ok(filter_with_limits(blocks, BlockOrder::AscendingCardinality, &limits))
}

/// The shared streaming core: process blocks in the given importance order,
/// keeping each profile while its per-profile limit allows, and retain
/// blocks that still entail a comparison.
fn filter_with_limits(
    blocks: &BlockCollection,
    order_by: BlockOrder,
    limits: &[u32],
) -> BlockCollection {
    filter_with_limits_traced(blocks, order_by, limits, None)
}

/// [`filter_with_limits`] with an optional provenance trace: when `trace` is
/// given, the original index of every committed block is appended in output
/// order.
fn filter_with_limits_traced(
    blocks: &BlockCollection,
    order_by: BlockOrder,
    limits: &[u32],
    mut trace: Option<&mut Vec<u32>>,
) -> BlockCollection {
    // Order blocks by descending importance.
    let mut order: Vec<u32> = (0..blocks.size() as u32).collect();
    match order_by {
        BlockOrder::AscendingCardinality => {
            order.sort_by_key(|&k| blocks.block(k as usize).cardinality());
        }
        BlockOrder::DescendingCardinality => {
            order.sort_by_key(|&k| std::cmp::Reverse(blocks.block(k as usize).cardinality()));
        }
        BlockOrder::Input => {}
    }

    let mut used = vec![0u32; blocks.num_entities()];
    let mut out = BlockCollectionBuilder::with_capacity(
        blocks.kind(),
        blocks.num_entities(),
        blocks.size(),
        blocks.total_assignments() as usize,
    );
    for &k in &order {
        let block = blocks.block(k as usize);
        let mut keep = |id: er_model::EntityId| {
            if used[id.idx()] < limits[id.idx()] {
                used[id.idx()] += 1;
                true
            } else {
                false
            }
        };
        // Stream surviving members straight into the arena; the limit
        // counters advance for every surviving member even when the block
        // itself is later rolled back — the per-profile budget is spent by
        // the block's *rank*, not by whether the block survives.
        out.begin();
        let (mut nl, mut nr) = (0usize, 0usize);
        for &e in block.left() {
            if keep(e) {
                out.push_left(e);
                nl += 1;
            }
        }
        for &e in block.right() {
            if keep(e) {
                out.push_right(e);
                nr += 1;
            }
        }
        // The keep-condition must follow the *collection's* kind, not the
        // block's shape: a Clean-Clean block whose right side was filtered
        // away entirely still reports `has_comparisons()` through its
        // left side, but those pairs would be intra-collection comparisons —
        // such a block must be dropped, not kept as a pseudo-dirty block.
        let keep_block = match blocks.kind() {
            er_model::ErKind::Dirty => nl > 1,
            er_model::ErKind::CleanClean => nl > 0 && nr > 0,
        };
        if keep_block {
            out.commit();
            if let Some(trace) = trace.as_deref_mut() {
                trace.push(k);
            }
        } else {
            out.rollback();
        }
    }
    let out = out.finish();
    #[cfg(feature = "sanitize")]
    crate::sanitize::check_filtered(blocks, &out, limits);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, EntityId, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    /// Entity 0 appears in 4 blocks of growing cardinality.
    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            8,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 2, 3])),
                Block::dirty(ids(&[0, 4, 5, 6])),
                Block::dirty(ids(&[0, 1, 2, 3, 4])),
            ],
        )
    }

    #[test]
    fn rejects_out_of_range_ratio() {
        let blocks = fixture();
        assert!(block_filtering(&blocks, 0.0).is_err());
        assert!(block_filtering(&blocks, 1.2).is_err());
        assert!(block_filtering(&blocks, 1.0).is_ok());
    }

    #[test]
    fn ratio_one_keeps_everything() {
        let blocks = fixture();
        let out = block_filtering(&blocks, 1.0).unwrap();
        assert_eq!(out.total_comparisons(), blocks.total_comparisons());
        assert_eq!(out.size(), blocks.size());
    }

    #[test]
    fn drops_profiles_from_largest_blocks_first() {
        let blocks = fixture();
        // Entity 0: |B_0| = 4, r = 0.5 -> limit 2: keep in the two smallest
        // blocks only.
        let out = block_filtering(&blocks, 0.5).unwrap();
        let idx = er_model::EntityIndex::build(&out);
        assert_eq!(idx.num_blocks_of(EntityId(0)), 2);
        // The smallest block (card 1) comes first in the output order.
        assert!(out.block(0).cardinality() <= out.block(1).cardinality());
    }

    #[test]
    fn every_placed_profile_keeps_at_least_one_block() {
        let blocks = fixture();
        let out = block_filtering(&blocks, 0.05).unwrap();
        // Even at an extreme ratio the limit clamps to 1 per profile; the
        // only profiles that may vanish are those whose remaining blocks
        // lost all comparison partners.
        let idx = er_model::EntityIndex::build(&out);
        // Entity 0 is in the first processed (smallest) block with entity 1.
        assert!(idx.num_blocks_of(EntityId(0)) >= 1);
    }

    #[test]
    fn reduces_comparisons_monotonically_in_r() {
        let blocks = fixture();
        let mut prev = u64::MAX;
        for r in [0.25, 0.5, 0.75, 1.0] {
            let out = block_filtering(&blocks, r).unwrap();
            let c = out.total_comparisons();
            assert!(c <= prev.max(c), "not monotone at r={r}");
            prev = c;
        }
        assert_eq!(prev, blocks.total_comparisons());
    }

    #[test]
    fn blocks_without_comparisons_are_dropped() {
        // After filtering, a block left with one profile must disappear.
        let blocks = BlockCollection::new(
            ErKind::Dirty,
            3,
            vec![Block::dirty(ids(&[0, 1])), Block::dirty(ids(&[0, 2]))],
        );
        // r=0.5: |B_0|=2 -> limit 1; 0 stays only in the first-processed
        // block; the other block collapses to {2} and is dropped.
        let out = block_filtering(&blocks, 0.5).unwrap();
        assert_eq!(out.size(), 1);
        assert_eq!(out.total_comparisons(), 1);
    }

    #[test]
    fn clean_clean_sides_filtered_independently() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            4,
            vec![
                Block::clean_clean(ids(&[0]), ids(&[2])),
                Block::clean_clean(ids(&[0, 1]), ids(&[2, 3])),
            ],
        );
        let out = block_filtering(&blocks, 0.5).unwrap();
        // Entities 0 and 2 (2 blocks each, limit 1) stay only in the small
        // block; the big block keeps {1}×{3}.
        assert_eq!(out.size(), 2);
        let big = out.block(1);
        assert_eq!(big.left(), &[EntityId(1)]);
        assert_eq!(big.right(), &[EntityId(3)]);
    }

    #[test]
    fn traced_filtering_matches_untraced_and_maps_blocks_back() {
        let blocks = fixture();
        for r in [0.25, 0.5, 0.8, 1.0] {
            let plain = block_filtering(&blocks, r).unwrap();
            let (traced, trace) = block_filtering_traced(&blocks, r).unwrap();
            assert_eq!(traced.size(), plain.size());
            assert_eq!(trace.len(), traced.size());
            for k in 0..traced.size() {
                let got = traced.block(k);
                assert_eq!(got.left(), plain.block(k).left());
                // Every member of the output block came from its source
                // block — the trace points at a superset.
                let src = blocks.block(trace[k] as usize);
                for e in got.left() {
                    assert!(src.left().contains(e), "r={r}: block {k} not from {}", trace[k]);
                }
            }
        }
    }

    #[test]
    fn trace_is_empty_when_nothing_survives() {
        let blocks = BlockCollection::new(ErKind::Dirty, 2, vec![Block::dirty(ids(&[0]))]);
        let (out, trace) = block_filtering_traced(&blocks, 1.0).unwrap();
        assert_eq!(out.size(), 0);
        assert!(trace.is_empty());
    }

    #[test]
    fn global_threshold_variant() {
        let blocks = fixture();
        let out = block_filtering_global(&blocks, 1).unwrap();
        let idx = er_model::EntityIndex::build(&out);
        for e in 0..7u32 {
            assert!(idx.num_blocks_of(EntityId(e)) <= 1);
        }
        assert!(block_filtering_global(&blocks, 0).is_err());
    }
}
