//! Graph-free Meta-blocking (§4.1, Figure 7b): Block Filtering followed by
//! Comparison Propagation — no blocking graph, no edge weights.

use crate::context::GraphContext;
use crate::filter::block_filtering;
use crate::propagation::comparison_propagation;
use er_model::{EntityId, Result};
use mb_observe::{Counter, Observer, Stage, StageScope};

/// The aggressive filtering ratio the paper tunes for efficiency-intensive
/// applications (recall ≥ 0.80 across all datasets).
pub const EFFICIENCY_RATIO: f64 = 0.25;

/// The filtering ratio the paper tunes for effectiveness-intensive
/// applications (recall ≥ 0.95 across all datasets).
pub const EFFECTIVENESS_RATIO: f64 = 0.55;

/// Runs Graph-free Meta-blocking: filters the blocks with ratio `r`, then
/// emits each surviving distinct comparison.
///
/// "The latter workflow skips the blocking graph, operating on the level of
/// individual profiles instead of profile pairs. Thus, it is expected to be
/// significantly faster than all graph-based algorithms" — and §6.4 confirms
/// it runs within minutes where graph-based schemes need hours, at the cost
/// of coarser pruning (lower precision than the reciprocal schemes).
///
/// `split` is the Clean-Clean id boundary (pass the collection size for
/// Dirty ER, or use the [`crate::pipeline::MetaBlocking`] builder which
/// handles this).
///
/// The two stages report to `obs` as [`Stage::BlockFiltering`] and
/// [`Stage::ComparisonPropagation`]; pass [`mb_observe::Noop`] when no
/// telemetry is wanted.
pub fn graph_free_meta_blocking(
    blocks: &er_model::BlockCollection,
    split: usize,
    r: f64,
    obs: &mut dyn Observer,
    sink: impl FnMut(EntityId, EntityId),
) -> Result<()> {
    graph_free_meta_blocking_threads(blocks, split, r, 1, obs, sink)
}

/// [`graph_free_meta_blocking`] on up to `threads` workers (`0` =
/// auto-detect): both the entity-index build and the propagation sweep run
/// chunked, with output and counters bit-identical to the sequential run
/// (see `DESIGN.md` §8).
pub fn graph_free_meta_blocking_threads(
    blocks: &er_model::BlockCollection,
    split: usize,
    r: f64,
    threads: usize,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) -> Result<()> {
    let mut scope = StageScope::enter(obs, Stage::BlockFiltering);
    let filtered = block_filtering(blocks, r)?;
    if scope.enabled() {
        scope.add(Counter::BlocksIn, blocks.size() as u64);
        scope.add(Counter::BlocksOut, filtered.size() as u64);
        scope.add(Counter::ComparisonsIn, blocks.total_comparisons());
        scope.add(Counter::ComparisonsOut, filtered.total_comparisons());
        scope.add(Counter::AssignmentsIn, blocks.total_assignments());
        scope.add(Counter::AssignmentsOut, filtered.total_assignments());
        scope.add(Counter::Entities, blocks.num_entities() as u64);
    }
    scope.finish();
    let threads = crate::pipeline::resolve_threads(threads);
    let mut scope = StageScope::enter(obs, Stage::ComparisonPropagation);
    let mut retained = 0u64;
    if threads > 1 {
        let ctx = GraphContext::new_parallel(&filtered, split, threads);
        for (a, b) in crate::parallel::comparison_propagation(&ctx, threads) {
            retained += 1;
            sink(a, b);
        }
    } else {
        let ctx = GraphContext::new(&filtered, split);
        comparison_propagation(&ctx, |a, b| {
            retained += 1;
            sink(a, b);
        });
    }
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, BlockCollection, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    #[test]
    fn filters_then_dedupes() {
        // Entity 0 sits in three blocks of growing size; r=0.34 keeps it in
        // the smallest only. Pair (1,2) stays distinct despite repeating.
        let blocks = BlockCollection::new(
            ErKind::Dirty,
            5,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[0, 1, 2, 3, 4])),
            ],
        );
        let mut got: Vec<(u32, u32)> = Vec::new();
        graph_free_meta_blocking(&blocks, 5, 0.34, &mut mb_observe::Noop, |a, b| {
            got.push((a.0, b.0))
        })
        .unwrap();
        got.sort_unstable();
        // 0 kept only in b0; 1 kept in b0,b1 (|B_1|=3 -> limit 1? round(0.34*3)=1)
        // Actually |B_1| = 3 -> limit max(1, round(1.02)) = 1 -> 1 kept in b0 only.
        // |B_2| = 2 -> limit 1 -> kept in b1. |B_3|,|B_4| = 1 -> kept in b2.
        // Surviving blocks: b0={0,1}, b1={2}, b2={3,4} -> b1 dropped.
        assert_eq!(got, vec![(0, 1), (3, 4)]);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Large enough to split into several chunks (MIN_CHUNK = 256).
        let n: u32 = 256 * 3 + 11;
        let mut raw = Vec::new();
        for i in (0..n - 3).step_by(2) {
            raw.push(Block::dirty(ids(&[i, i + 1, i + 3])));
        }
        raw.push(Block::dirty(ids(&[0, n / 2, n - 1])));
        let blocks = BlockCollection::new(ErKind::Dirty, n as usize, raw);
        let mut seq = Vec::new();
        graph_free_meta_blocking(&blocks, n as usize, 0.8, &mut mb_observe::Noop, |a, b| {
            seq.push((a, b))
        })
        .unwrap();
        for threads in [0, 2, 4, 8] {
            let mut par = Vec::new();
            graph_free_meta_blocking_threads(
                &blocks,
                n as usize,
                0.8,
                threads,
                &mut mb_observe::Noop,
                |a, b| par.push((a, b)),
            )
            .unwrap();
            assert_eq!(par, seq, "graph-free output differs at {threads} threads");
        }
    }

    #[test]
    fn invalid_ratio_is_rejected() {
        let blocks = BlockCollection::new(ErKind::Dirty, 2, vec![]);
        assert!(
            graph_free_meta_blocking(&blocks, 2, 0.0, &mut mb_observe::Noop, |_, _| {}).is_err()
        );
    }

    #[test]
    fn paper_ratios_are_the_tuned_values() {
        assert_eq!(EFFICIENCY_RATIO, 0.25);
        assert_eq!(EFFECTIVENESS_RATIO, 0.55);
    }
}
