//! Per-entity candidate scoring — the node-centric pruning schemes recast
//! as an online query primitive.
//!
//! The batch pipeline sweeps every node of the blocking graph; a serving
//! layer instead answers *one* neighborhood at a time against a persisted
//! index. [`NeighborhoodScorer`] owns the [`GraphContext`] (and the degree
//! statistics EJS needs) so a loaded snapshot can answer queries repeatedly
//! without re-deriving any per-graph state, and its retention modes reuse
//! the exact selection code of [`crate::prune::cnp`] / [`crate::prune::wnp`]
//! — a single query returns precisely the candidates batch node-centric
//! pruning would retain for that node, in descending weight order.

use crate::context::GraphContext;
use crate::prune::{neighborhood_mean, reaches, top_k_neighbors, WeightedEdge};
use crate::scanner::{NeighborhoodScanner, ScanScope};
use crate::store::CandidateStore;
use crate::weights::{edge_weight, Degrees, WeightingScheme};
use er_model::{BlockCollection, EntityId};

/// Chunk floor for [`NeighborhoodScorer::batch`] — same rationale and value
/// as the pipeline sweeps (DESIGN.md §8: all parallel stages chunk through
/// [`er_model::chunk_ranges`]).
const MIN_CHUNK: usize = 256;

/// One retained candidate: a neighbor id and the weight of its edge to the
/// query's pivot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The co-occurring profile.
    pub id: EntityId,
    /// The edge weight under the scorer's [`WeightingScheme`].
    pub weight: f64,
}

/// Which neighbors a query retains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Retention {
    /// CNP semantics: the `k` best edges of the neighborhood under the
    /// deterministic weight-then-ids total order.
    TopK(usize),
    /// WNP semantics: every edge whose weight reaches the neighborhood's
    /// mean weight.
    AboveMean,
}

impl std::fmt::Display for Retention {
    /// The stable command-line/JSON form: `top-k=<k>` or `above-mean` —
    /// same token discipline as [`WeightingScheme`] and
    /// [`crate::PruningScheme`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Retention::TopK(k) => write!(f, "top-k={k}"),
            Retention::AboveMean => f.write_str("above-mean"),
        }
    }
}

impl std::str::FromStr for Retention {
    type Err = String;

    /// Parses the [`Retention::to_string`] form back, case-insensitively;
    /// `_` is accepted in place of `-` (as for [`crate::PruningScheme`]).
    fn from_str(s: &str) -> Result<Retention, String> {
        let canon = s.trim().to_ascii_lowercase().replace('_', "-");
        if canon == "above-mean" {
            return Ok(Retention::AboveMean);
        }
        if let Some(k) = canon.strip_prefix("top-k=") {
            return match k.parse::<usize>() {
                Ok(k) if k > 0 => Ok(Retention::TopK(k)),
                _ => Err(format!("top-k retention needs a positive count, got '{k}'")),
            };
        }
        Err(format!("unknown retention '{s}' (expected top-k=<k> or above-mean)"))
    }
}

/// The result of one query: retained candidates plus the work counters the
/// observability layer reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    /// Retained candidates, in descending weight order (ties broken by the
    /// [`crate::prune::cnp`] pair-id order, so the ranking is total).
    pub candidates: Vec<Candidate>,
    /// Blocks walked to assemble the neighborhood.
    pub blocks_touched: u64,
    /// Distinct neighbors weighed (the node degree `|v_i|`).
    pub edges_scored: u64,
}

/// Answers per-entity candidate queries over one blocking graph.
///
/// Owns everything a query needs — the graph context, the EJS degree
/// statistics, the ScanCount scanner and its scratch — so consecutive
/// queries are allocation-free once the neighborhood buffers have grown to
/// their working size.
#[derive(Debug)]
pub struct NeighborhoodScorer<S> {
    store: S,
    scheme: WeightingScheme,
    degrees: Option<Degrees>,
    scanner: NeighborhoodScanner,
    ids: Vec<u32>,
    weights: Vec<f64>,
    // Probe-scan epoch state (the scanner's scratch is private to it, and a
    // probe pivot has no entry in the entity index to scan from).
    probe_flags: Vec<u32>,
    probe_score: Vec<f64>,
    probe_tick: u32,
}

impl<'b> NeighborhoodScorer<GraphContext<'b>> {
    /// Builds a scorer for `scheme`, deriving the entity index from the
    /// blocks.
    pub fn new(blocks: &'b BlockCollection, split: usize, scheme: WeightingScheme) -> Self {
        Self::from_context(GraphContext::new(blocks, split), scheme)
    }

    /// Builds a scorer around an existing context — the snapshot-load path,
    /// where the entity index was persisted and must not be re-derived.
    pub fn from_context(ctx: GraphContext<'b>, scheme: WeightingScheme) -> Self {
        Self::from_store(ctx, scheme)
    }

    /// The graph context being queried.
    pub fn ctx(&self) -> &GraphContext<'b> {
        &self.store
    }
}

impl<S: CandidateStore> NeighborhoodScorer<S> {
    /// Builds a scorer over any [`CandidateStore`] — the generic entry the
    /// zero-copy serving stores use. Queries are bit-identical across store
    /// implementations presenting the same graph.
    pub fn from_store(store: S, scheme: WeightingScheme) -> Self {
        let degrees = scheme.needs_degrees().then(|| Degrees::compute(&store));
        let n = store.num_entities();
        NeighborhoodScorer {
            store,
            scheme,
            degrees,
            scanner: NeighborhoodScanner::new(n),
            ids: Vec::new(),
            weights: Vec::new(),
            probe_flags: vec![0; n],
            probe_score: vec![0.0; n],
            probe_tick: 0,
        }
    }

    /// The store being queried.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The weighting scheme every query evaluates.
    pub fn scheme(&self) -> WeightingScheme {
        self.scheme
    }

    /// Scores the neighborhood of one indexed entity.
    ///
    /// With [`Retention::TopK`]`(k)` the result is exactly the neighbor set
    /// batch CNP retains for this node at threshold `k`; with
    /// [`Retention::AboveMean`] it is exactly the WNP retention.
    pub fn query(&mut self, pivot: EntityId, retention: Retention) -> Scored {
        let hood = self.scanner.scan(&self.store, pivot, self.scheme.accumulate(), ScanScope::All);
        self.ids.clear();
        self.ids.extend_from_slice(hood.ids);
        self.weights.clear();
        for &j in &self.ids {
            let score = hood.score_of(j);
            self.weights.push(edge_weight(
                self.scheme,
                &self.store,
                self.degrees.as_ref(),
                pivot,
                EntityId(j),
                score,
            ));
        }
        Scored {
            candidates: retain(pivot, &self.ids, &self.weights, retention),
            blocks_touched: self.store.block_list(pivot).len() as u64,
            edges_scored: self.ids.len() as u64,
        }
    }

    /// Scores a *probe* — a virtual entity described only by the blocks it
    /// would occupy (a cold query whose profile is not in the index).
    ///
    /// `block_ids` are indices into the scorer's block collection;
    /// `probe_is_first` states which Clean-Clean side the probe belongs to
    /// (ignored for Dirty ER). Probe-side statistics substitute for the
    /// missing index entry: `|B_i| = block_ids.len()` and the EJS degree is
    /// the probe's distinct-neighbor count (the persisted `|E_B|` excludes
    /// the probe's own edges). Ties rank as if the probe's id were
    /// `num_entities`, past every real id.
    pub fn probe(
        &mut self,
        block_ids: &[u32],
        probe_is_first: bool,
        retention: Retention,
    ) -> Scored {
        self.probe_tick = self.probe_tick.wrapping_add(1);
        if self.probe_tick == 0 {
            self.probe_flags.fill(0);
            self.probe_tick = 1;
        }
        self.ids.clear();
        let arcs = self.scheme.accumulate() == crate::scanner::Accumulate::ReciprocalCardinalities;
        let scan_right = self.store.kind() != er_model::ErKind::Dirty && probe_is_first;
        let tick = self.probe_tick;
        let (flags, score, ids) = (&mut self.probe_flags, &mut self.probe_score, &mut self.ids);
        for &k in block_ids {
            let increment = if arcs { self.store.recip_cardinality_of(k as usize) } else { 1.0 };
            self.store.members_of(k as usize, scan_right).for_each(|j| {
                let idx = j as usize;
                if flags[idx] != tick {
                    flags[idx] = tick;
                    score[idx] = 0.0;
                    ids.push(j);
                }
                score[idx] += increment;
            });
        }
        let probe_blocks = block_ids.len() as f64;
        let probe_degree = self.ids.len();
        self.weights.clear();
        for &j in &self.ids {
            self.weights.push(probe_weight(
                self.scheme,
                &self.store,
                self.degrees.as_ref(),
                probe_blocks,
                probe_degree,
                EntityId(j),
                self.probe_score[j as usize],
            ));
        }
        // Entity ids are dense u32s, so |E| itself always fits.
        let past_every_id = self.store.num_entities() as u32;
        let virtual_pivot = EntityId(past_every_id);
        Scored {
            candidates: retain(virtual_pivot, &self.ids, &self.weights, retention),
            blocks_touched: block_ids.len() as u64,
            edges_scored: probe_degree as u64,
        }
    }
}

impl<S: CandidateStore + Sync> NeighborhoodScorer<S> {
    /// Scores every indexed entity, fanning the id range out over up to
    /// `threads` workers.
    ///
    /// Chunks come from [`er_model::chunk_ranges`] and results are
    /// concatenated in range order, so the output is bit-identical to the
    /// sequential sweep for any thread count (each pivot's query is
    /// independent of every other's).
    pub fn batch(&self, retention: Retention, threads: usize) -> Vec<Scored> {
        let n = self.store.num_entities();
        let ranges = er_model::chunk_ranges(n, threads, MIN_CHUNK);
        let store = &self.store;
        let degrees = self.degrees.as_ref();
        let scheme = self.scheme;
        let run_range = move |range: std::ops::Range<usize>| {
            let mut scanner = NeighborhoodScanner::new(n);
            let mut ids: Vec<u32> = Vec::new();
            let mut weights: Vec<f64> = Vec::new();
            let mut out = Vec::with_capacity(range.len());
            // Entity ids are dense u32s, so the range bounds always fit.
            for raw in range.start as u32..range.end as u32 {
                let pivot = EntityId(raw);
                let hood = scanner.scan(store, pivot, scheme.accumulate(), ScanScope::All);
                ids.clear();
                ids.extend_from_slice(hood.ids);
                weights.clear();
                for &j in &ids {
                    let score = hood.score_of(j);
                    weights.push(edge_weight(scheme, store, degrees, pivot, EntityId(j), score));
                }
                out.push(Scored {
                    candidates: retain(pivot, &ids, &weights, retention),
                    blocks_touched: store.block_list(pivot).len() as u64,
                    edges_scored: ids.len() as u64,
                });
            }
            out
        };
        if ranges.len() <= 1 {
            return ranges.into_iter().flat_map(run_range).collect();
        }
        std::thread::scope(|s| {
            let handles: Vec<_> =
                ranges.into_iter().map(|r| s.spawn(move || run_range(r))).collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

/// Applies a retention mode to one weighed neighborhood and returns the
/// survivors in descending [`WeightedEdge`] order.
pub(crate) fn retain(
    pivot: EntityId,
    ids: &[u32],
    weights: &[f64],
    retention: Retention,
) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = match retention {
        Retention::TopK(k) => {
            // The exact CNP selection: same helper, same total order.
            let kept = top_k_neighbors(pivot, ids, weights, k);
            ids.iter()
                .zip(weights)
                .filter(|(j, _)| kept.binary_search(j).is_ok())
                .map(|(&j, &w)| Candidate { id: EntityId(j), weight: w })
                .collect()
        }
        Retention::AboveMean => {
            if ids.is_empty() {
                return Vec::new();
            }
            let mean = neighborhood_mean(weights);
            ids.iter()
                .zip(weights)
                .filter(|&(_, &w)| reaches(w, mean))
                .map(|(&j, &w)| Candidate { id: EntityId(j), weight: w })
                .collect()
        }
    };
    let edge = |c: &Candidate| WeightedEdge {
        w: c.weight,
        a: pivot.0.min(c.id.0),
        b: pivot.0.max(c.id.0),
    };
    out.sort_unstable_by(|x, y| edge(y).cmp(&edge(x)));
    out
}

/// [`edge_weight`] for a probe pivot, with the probe-side statistics passed
/// explicitly instead of read from the entity index.
fn probe_weight<S: CandidateStore>(
    scheme: WeightingScheme,
    store: &S,
    degrees: Option<&Degrees>,
    probe_blocks: f64,
    probe_degree: usize,
    j: EntityId,
    score: f64,
) -> f64 {
    let num_blocks = store.num_blocks() as f64;
    match scheme {
        WeightingScheme::Arcs | WeightingScheme::Cbs => score,
        WeightingScheme::Ecbs => {
            let bj = store.num_blocks_of(j) as f64;
            score * (num_blocks / probe_blocks).ln() * (num_blocks / bj).ln()
        }
        WeightingScheme::Js => {
            let bj = store.num_blocks_of(j) as f64;
            score / (probe_blocks + bj - score)
        }
        WeightingScheme::Ejs => {
            let bj = store.num_blocks_of(j) as f64;
            let js = score / (probe_blocks + bj - score);
            let degrees = match degrees {
                Some(d) => d,
                // from_context computes degree statistics whenever the
                // scheme is EJS, so this arm marks a construction bug.
                None => unreachable!("EJS probe evaluated without degree statistics"),
            };
            let e = degrees.total_edges as f64;
            let di = probe_degree.max(1) as f64;
            let dj = degrees.per_node[j.idx()].max(1) as f64;
            js * (e / di).ln() * (e / dj).ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune;
    use crate::weighting::WeightingImpl;
    use crate::weights::EdgeWeigher;
    use er_model::{Block, BlockCollection, ErKind};
    use mb_observe::Noop;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            5,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[2, 3])),
                Block::dirty(ids(&[1, 2, 4])),
            ],
        )
    }

    fn clean_fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::CleanClean,
            6,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[3, 4])),
                Block::clean_clean(ids(&[0]), ids(&[3])),
                Block::clean_clean(ids(&[1, 2]), ids(&[4, 5])),
            ],
        )
    }

    /// Directed CNP retentions per pivot, as (sorted) neighbor-id sets.
    fn cnp_per_node(
        blocks: &BlockCollection,
        split: usize,
        scheme: WeightingScheme,
    ) -> Vec<Vec<u32>> {
        let ctx = GraphContext::new(blocks, split);
        let weigher = EdgeWeigher::new(scheme, &ctx);
        let mut per_node = vec![Vec::new(); blocks.num_entities()];
        prune::cnp(&ctx, &weigher, WeightingImpl::Optimized, &mut Noop, |a, b| {
            per_node[a.idx()].push(b.0);
        });
        for v in &mut per_node {
            v.sort_unstable();
        }
        per_node
    }

    /// Directed WNP retentions per pivot, as (sorted) neighbor-id sets.
    fn wnp_per_node(
        blocks: &BlockCollection,
        split: usize,
        scheme: WeightingScheme,
    ) -> Vec<Vec<u32>> {
        let ctx = GraphContext::new(blocks, split);
        let weigher = EdgeWeigher::new(scheme, &ctx);
        let mut per_node = vec![Vec::new(); blocks.num_entities()];
        prune::wnp(&ctx, &weigher, WeightingImpl::Optimized, &mut Noop, |a, b| {
            per_node[a.idx()].push(b.0);
        });
        for v in &mut per_node {
            v.sort_unstable();
        }
        per_node
    }

    fn candidate_ids(scored: &Scored) -> Vec<u32> {
        let mut v: Vec<u32> = scored.candidates.iter().map(|c| c.id.0).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn top_k_query_matches_batch_cnp_for_every_scheme() {
        for blocks in [fixture(), clean_fixture()] {
            let split = if blocks.kind() == ErKind::Dirty { blocks.num_entities() } else { 3 };
            for scheme in WeightingScheme::ALL {
                let expected = cnp_per_node(&blocks, split, scheme);
                let ctx = GraphContext::new(&blocks, split);
                let k = prune::cnp_threshold(&ctx);
                let mut scorer = NeighborhoodScorer::new(&blocks, split, scheme);
                for (i, want) in expected.iter().enumerate() {
                    let got = scorer.query(EntityId(i as u32), Retention::TopK(k));
                    assert_eq!(&candidate_ids(&got), want, "{scheme:?} pivot {i}");
                }
            }
        }
    }

    #[test]
    fn above_mean_query_matches_batch_wnp_for_every_scheme() {
        for blocks in [fixture(), clean_fixture()] {
            let split = if blocks.kind() == ErKind::Dirty { blocks.num_entities() } else { 3 };
            for scheme in WeightingScheme::ALL {
                let expected = wnp_per_node(&blocks, split, scheme);
                let mut scorer = NeighborhoodScorer::new(&blocks, split, scheme);
                for (i, want) in expected.iter().enumerate() {
                    let got = scorer.query(EntityId(i as u32), Retention::AboveMean);
                    assert_eq!(&candidate_ids(&got), want, "{scheme:?} pivot {i}");
                }
            }
        }
    }

    #[test]
    fn candidates_are_ranked_descending() {
        let blocks = fixture();
        let mut scorer =
            NeighborhoodScorer::new(&blocks, blocks.num_entities(), WeightingScheme::Cbs);
        let got = scorer.query(EntityId(1), Retention::TopK(10));
        assert!(!got.candidates.is_empty());
        for w in got.candidates.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        // Neighbors 0 and 2 tie at CBS 2; the descending WeightedEdge order
        // places the larger pair ids first, so (1,2) precedes (0,1).
        assert_eq!(got.candidates[0].id, EntityId(2));
        assert_eq!(got.candidates[0].weight, 2.0);
        assert_eq!(got.candidates[1].id, EntityId(0));
        assert_eq!(got.edges_scored, 3);
        assert_eq!(got.blocks_touched, 3);
    }

    #[test]
    fn probe_of_an_indexed_entitys_blocks_finds_that_entity() {
        let blocks = fixture();
        let mut scorer =
            NeighborhoodScorer::new(&blocks, blocks.num_entities(), WeightingScheme::Cbs);
        // Entity 2 sits in blocks 1, 2, 3.
        let got = scorer.probe(&[1, 2, 3], true, Retention::TopK(1));
        assert_eq!(got.candidates.len(), 1);
        assert_eq!(got.candidates[0].id, EntityId(2));
        assert_eq!(got.candidates[0].weight, 3.0);
        assert_eq!(got.blocks_touched, 3);
    }

    #[test]
    fn probe_respects_clean_clean_sides() {
        let blocks = clean_fixture();
        let mut scorer = NeighborhoodScorer::new(&blocks, 3, WeightingScheme::Cbs);
        // A first-side probe must only see right-side members.
        let got = scorer.probe(&[0, 1], true, Retention::TopK(10));
        assert!(got.candidates.iter().all(|c| c.id.idx() >= 3));
        // A second-side probe over the same blocks sees the left side.
        let got = scorer.probe(&[0, 1], false, Retention::TopK(10));
        assert!(got.candidates.iter().all(|c| c.id.idx() < 3));
    }

    #[test]
    fn probe_scan_state_resets_between_probes() {
        let blocks = fixture();
        let mut scorer =
            NeighborhoodScorer::new(&blocks, blocks.num_entities(), WeightingScheme::Cbs);
        let first = scorer.probe(&[0, 1, 3], true, Retention::AboveMean);
        let again = scorer.probe(&[0, 1, 3], true, Retention::AboveMean);
        assert_eq!(first, again);
        // A different probe is not contaminated by the previous scores.
        let other = scorer.probe(&[2], true, Retention::TopK(10));
        assert_eq!(candidate_ids(&other), vec![2, 3]);
        assert!(other.candidates.iter().all(|c| c.weight == 1.0));
    }

    #[test]
    fn empty_probe_and_isolated_entities_yield_no_candidates() {
        let blocks = fixture();
        let mut scorer =
            NeighborhoodScorer::new(&blocks, blocks.num_entities(), WeightingScheme::Js);
        let got = scorer.probe(&[], true, Retention::AboveMean);
        assert!(got.candidates.is_empty());
        assert_eq!(got.edges_scored, 0);
    }

    #[test]
    fn batch_is_identical_across_thread_counts() {
        // Enough entities to split into several chunks past the floor.
        let n = MIN_CHUNK * 3 + 17;
        let mut blocks = Vec::new();
        for b in 0..n / 2 {
            let base = (b * 2) as u32;
            blocks.push(Block::dirty(ids(&[base, base + 1, (base + 7) % n as u32])));
        }
        let coll = BlockCollection::new(ErKind::Dirty, n, blocks);
        for scheme in [WeightingScheme::Cbs, WeightingScheme::Ejs] {
            let scorer = NeighborhoodScorer::new(&coll, n, scheme);
            let sequential = scorer.batch(Retention::TopK(2), 1);
            assert_eq!(sequential.len(), n);
            for threads in [2, 4, 8] {
                assert_eq!(scorer.batch(Retention::TopK(2), threads), sequential);
            }
        }
    }

    #[test]
    fn retention_tokens_round_trip() {
        for r in [Retention::TopK(1), Retention::TopK(5000), Retention::AboveMean] {
            assert_eq!(r.to_string().parse::<Retention>().unwrap(), r);
        }
        assert_eq!("top-k=5".parse::<Retention>().unwrap(), Retention::TopK(5));
        assert_eq!("Above-Mean".parse::<Retention>().unwrap(), Retention::AboveMean);
        assert_eq!(" top_k=3 ".parse::<Retention>().unwrap(), Retention::TopK(3));
        assert!("top-k=0".parse::<Retention>().unwrap_err().contains("positive"));
        assert!("top-k=x".parse::<Retention>().unwrap_err().contains("positive"));
        assert!("best".parse::<Retention>().unwrap_err().contains("above-mean"));
    }

    #[test]
    fn batch_agrees_with_single_queries() {
        let blocks = fixture();
        let mut scorer =
            NeighborhoodScorer::new(&blocks, blocks.num_entities(), WeightingScheme::Ecbs);
        let batch = scorer.batch(Retention::AboveMean, 4);
        for i in 0..blocks.num_entities() {
            let single = scorer.query(EntityId(i as u32), Retention::AboveMean);
            assert_eq!(batch[i], single, "pivot {i}");
        }
    }
}
