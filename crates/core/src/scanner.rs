//! The ScanCount neighborhood scanner — the core of Optimized Edge Weighting
//! (Algorithm 3).
//!
//! For a profile `p_i`, the scanner walks the members of every block in
//! `B_i` and accumulates, per co-occurring profile `p_j`, either the number
//! of shared blocks (`commonBlocks[j]` in the paper's pseudo-code) or — for
//! the ARCS scheme — the sum `Σ 1/‖b‖` over the shared blocks. An epoch
//! array (`flags` in the paper) avoids clearing the accumulators between
//! nodes, which would cost `O(|E|)` per node.

use crate::store::CandidateStore;
use er_model::EntityId;

/// What the scanner accumulates per co-occurring profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accumulate {
    /// `|B_ij|` — the number of shared blocks (CBS/ECBS/JS/EJS).
    CommonBlocks,
    /// `Σ_{b ∈ B_ij} 1/‖b‖` — the ARCS numerator.
    ReciprocalCardinalities,
}

/// Which co-occurring profiles a scan should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanScope {
    /// Every comparable neighbor — used by node-centric traversals.
    All,
    /// Only neighbors with a larger entity id — used by edge-centric
    /// traversals over Dirty ER so each edge is visited exactly once.
    GreaterOnly,
}

/// Reusable scan state: `O(|E|)` once, `O(1)` amortized per scanned edge.
#[derive(Debug)]
pub struct NeighborhoodScanner {
    /// Epoch markers: `flags[j] == tick` means `score[j]` is current.
    flags: Vec<u32>,
    score: Vec<f64>,
    neighbors: Vec<u32>,
    tick: u32,
}

impl NeighborhoodScanner {
    /// Creates a scanner for graphs over `num_entities` profiles.
    pub fn new(num_entities: usize) -> Self {
        NeighborhoodScanner {
            flags: vec![0; num_entities],
            score: vec![0.0; num_entities],
            neighbors: Vec::new(),
            tick: 0,
        }
    }

    /// Scans the neighborhood of `pivot` over any [`CandidateStore`] and
    /// returns the co-occurring profiles with their accumulated scores.
    ///
    /// The returned slices are valid until the next call. Neighbor order is
    /// first-co-occurrence order and therefore deterministic (and identical
    /// across store implementations, which present the same member order).
    pub fn scan<S: CandidateStore>(
        &mut self,
        store: &S,
        pivot: EntityId,
        accumulate: Accumulate,
        scope: ScanScope,
    ) -> Neighborhood<'_> {
        self.tick = self.tick.wrapping_add(1);
        if self.tick == 0 {
            // Extremely unlikely wrap-around: reset markers to stay sound.
            self.flags.fill(0);
            self.tick = 1;
        }
        self.neighbors.clear();

        // For Clean-Clean ER only the opposite side co-occurs; for Dirty
        // ER all block members do (blocks store them in `left`).
        let scan_right = store.scan_right(pivot);
        let tick = self.tick;
        let (flags, score, neighbors) = (&mut self.flags, &mut self.score, &mut self.neighbors);
        store.block_list(pivot).for_each(|k| {
            let increment = match accumulate {
                Accumulate::CommonBlocks => 1.0,
                Accumulate::ReciprocalCardinalities => store.recip_cardinality_of(k as usize),
            };
            store.members_of(k as usize, scan_right).for_each(|j| {
                if j == pivot.0 {
                    return;
                }
                if scope == ScanScope::GreaterOnly && j < pivot.0 {
                    return;
                }
                let idx = j as usize;
                if flags[idx] != tick {
                    flags[idx] = tick;
                    score[idx] = 0.0;
                    neighbors.push(j);
                }
                score[idx] += increment;
            });
        });
        Neighborhood { ids: &self.neighbors, score: &self.score }
    }
}

/// The result of one scan: neighbor ids plus an indexed score array.
#[derive(Debug)]
pub struct Neighborhood<'a> {
    /// Co-occurring profile ids, in first-co-occurrence order.
    pub ids: &'a [u32],
    score: &'a [f64],
}

impl Neighborhood<'_> {
    /// The accumulated score of neighbor `j`.
    ///
    /// Only meaningful for ids in [`Neighborhood::ids`].
    #[inline]
    pub fn score_of(&self, j: u32) -> f64 {
        self.score[j as usize]
    }

    /// Number of distinct neighbors — the node degree `|v_i|`.
    pub fn degree(&self) -> usize {
        self.ids.len()
    }

    /// Iterator over `(neighbor, score)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, f64)> + '_ {
        self.ids.iter().map(move |&j| (EntityId(j), self.score[j as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::GraphContext;
    use er_model::{Block, BlockCollection, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn dirty_fixture() -> BlockCollection {
        // b0 = {0,1,2} (card 3), b1 = {0,1} (card 1), b2 = {1,3} (card 1).
        BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[1, 3])),
            ],
        )
    }

    #[test]
    fn counts_common_blocks() {
        let blocks = dirty_fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let mut sc = NeighborhoodScanner::new(4);
        let n = sc.scan(&ctx, EntityId(1), Accumulate::CommonBlocks, ScanScope::All);
        assert_eq!(n.degree(), 3);
        assert_eq!(n.score_of(0), 2.0);
        assert_eq!(n.score_of(2), 1.0);
        assert_eq!(n.score_of(3), 1.0);
    }

    #[test]
    fn accumulates_reciprocal_cardinalities() {
        let blocks = dirty_fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let mut sc = NeighborhoodScanner::new(4);
        let n = sc.scan(&ctx, EntityId(0), Accumulate::ReciprocalCardinalities, ScanScope::All);
        // Neighbor 1 shares b0 (card 3) and b1 (card 1): 1/3 + 1 = 4/3.
        assert!((n.score_of(1) - (1.0 / 3.0 + 1.0)).abs() < 1e-12);
        // Neighbor 2 shares only b0.
        assert!((n.score_of(2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn greater_only_scope_halves_the_edges() {
        let blocks = dirty_fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let mut sc = NeighborhoodScanner::new(4);
        let mut total = 0usize;
        for i in 0..4u32 {
            total += sc
                .scan(&ctx, EntityId(i), Accumulate::CommonBlocks, ScanScope::GreaterOnly)
                .degree();
        }
        // Distinct edges: (0,1),(0,2),(1,2),(1,3) = 4.
        assert_eq!(total, 4);
    }

    #[test]
    fn state_is_reset_between_scans() {
        let blocks = dirty_fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let mut sc = NeighborhoodScanner::new(4);
        let first = sc.scan(&ctx, EntityId(1), Accumulate::CommonBlocks, ScanScope::All);
        assert_eq!(first.score_of(0), 2.0);
        let second = sc.scan(&ctx, EntityId(2), Accumulate::CommonBlocks, ScanScope::All);
        // From node 2's perspective node 0 shares exactly one block; a stale
        // accumulator would report 3.
        assert_eq!(second.score_of(0), 1.0);
        assert_eq!(second.degree(), 2);
    }

    #[test]
    fn clean_clean_scans_only_cross_side() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            5,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[3, 4])),
                Block::clean_clean(ids(&[0]), ids(&[3])),
            ],
        );
        let ctx = GraphContext::new(&blocks, 3);
        let mut sc = NeighborhoodScanner::new(5);
        // Left pivot sees only right members.
        let n = sc.scan(&ctx, EntityId(0), Accumulate::CommonBlocks, ScanScope::All);
        assert_eq!(n.degree(), 2);
        assert_eq!(n.score_of(3), 2.0);
        assert_eq!(n.score_of(4), 1.0);
        // Right pivot sees only left members.
        let n = sc.scan(&ctx, EntityId(4), Accumulate::CommonBlocks, ScanScope::All);
        assert_eq!(n.degree(), 2);
        assert_eq!(n.score_of(0), 1.0);
        assert_eq!(n.score_of(1), 1.0);
    }

    #[test]
    fn isolated_node_has_empty_neighborhood() {
        let blocks = dirty_fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let mut sc = NeighborhoodScanner::new(4);
        // Entity 3 is only in b2 with entity 1.
        let n = sc.scan(&ctx, EntityId(3), Accumulate::CommonBlocks, ScanScope::All);
        assert_eq!(n.degree(), 1);
    }
}
