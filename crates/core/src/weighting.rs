//! Edge enumeration and weighting: Original (Algorithm 2) vs Optimized
//! (Algorithm 3).
//!
//! Both enumerate every *distinct* edge of the implicit blocking graph with
//! its weight; they differ in how much work each comparison costs:
//!
//! * [`original::for_each_edge`] iterates over the comparisons of every
//!   block and intersects the two block lists to (a) verify the LeCoBI
//!   condition and (b) count the common blocks — `O(2·BPE)` per comparison;
//! * [`optimized::for_each_edge`] scans each node's blocks once, accumulating
//!   co-occurrence counts in arrays — `O(1)` amortized per comparison (the
//!   ScanCount idea, §4.2).
//!
//! Prefix Filtering is *not* used: as §4.2 explains, the pruning thresholds
//! are only known a-posteriori and in practice fall below 0.1, which forces
//! Prefix Filtering to keep entire block lists as representations and
//! nullifies its advantage. The ScanCount approach is threshold-independent.

use crate::context::GraphContext;
use crate::scanner::{NeighborhoodScanner, ScanScope};
use crate::weights::EdgeWeigher;
use er_model::EntityId;

/// Which edge-weighting implementation a pruning scheme runs on — the
/// independent variable of the paper's Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightingImpl {
    /// Algorithm 2: per-comparison block-list intersection.
    Original,
    /// Algorithm 3: ScanCount neighborhood sweep (the contribution).
    #[default]
    Optimized,
}

impl WeightingImpl {
    /// Display name used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            WeightingImpl::Original => "Original Edge Weighting",
            WeightingImpl::Optimized => "Optimized Edge Weighting",
        }
    }

    /// The stable lowercase token used on command lines and in JSON configs
    /// (the [`std::fmt::Display`]/[`std::str::FromStr`] form).
    pub fn token(self) -> &'static str {
        match self {
            WeightingImpl::Original => "original",
            WeightingImpl::Optimized => "optimized",
        }
    }
}

impl std::fmt::Display for WeightingImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl std::str::FromStr for WeightingImpl {
    type Err = String;

    /// Parses `original` or `optimized`, case-insensitively.
    fn from_str(s: &str) -> Result<WeightingImpl, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "original" => Ok(WeightingImpl::Original),
            "optimized" => Ok(WeightingImpl::Optimized),
            _ => Err(format!(
                "unknown weighting implementation '{s}' (expected original or optimized)"
            )),
        }
    }
}

/// Dispatches an edge sweep to the selected implementation. Both visit each
/// distinct edge exactly once with identical weights; only the per-edge cost
/// differs.
pub fn for_each_edge(
    imp: WeightingImpl,
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    sink: impl FnMut(EntityId, EntityId, f64),
) {
    // Under the sanitize feature every emitted edge is checked (finite
    // non-negative weight, comparable endpoints, genuine co-occurrence)
    // before it reaches the caller's sink.
    #[cfg(feature = "sanitize")]
    let sink = {
        let mut inner = sink;
        move |a: EntityId, b: EntityId, w: f64| {
            crate::sanitize::check_edge(ctx, a, b, w);
            inner(a, b, w)
        }
    };
    match imp {
        WeightingImpl::Original => original::for_each_edge(ctx, weigher, sink),
        WeightingImpl::Optimized => optimized::for_each_edge(ctx, weigher, sink),
    }
}

/// Dispatches a node-centric sweep to the selected implementation.
pub fn for_each_neighborhood(
    imp: WeightingImpl,
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    sink: impl FnMut(EntityId, &[u32], &[f64]),
) {
    #[cfg(feature = "sanitize")]
    let sink = {
        let mut inner = sink;
        move |pivot: EntityId, ids: &[u32], weights: &[f64]| {
            crate::sanitize::check_neighborhood(ctx, pivot, ids, weights);
            inner(pivot, ids, weights)
        }
    };
    match imp {
        WeightingImpl::Original => original::for_each_neighborhood(ctx, weigher, sink),
        WeightingImpl::Optimized => optimized::for_each_neighborhood(ctx, weigher, sink),
    }
}

/// Optimized Edge Weighting (Algorithm 3).
pub mod optimized {
    use super::*;

    /// Invokes `sink(i, j, weight)` for every distinct edge of the blocking
    /// graph, in deterministic order. `i < j` always holds.
    pub fn for_each_edge(
        ctx: &GraphContext<'_>,
        weigher: &EdgeWeigher<'_, '_>,
        mut sink: impl FnMut(EntityId, EntityId, f64),
    ) {
        let mut scanner = NeighborhoodScanner::new(ctx.num_entities());
        let accumulate = weigher.scheme().accumulate();
        let n = ctx.num_entities() as u32;
        for raw in 0..n {
            let pivot = EntityId(raw);
            // For Clean-Clean ER every edge is charged to its left-side
            // endpoint (right-side ids are all larger), so right-side scans
            // would come back empty — skip them outright.
            if !ctx.is_first(pivot) {
                continue;
            }
            let hood = scanner.scan(ctx, pivot, accumulate, ScanScope::GreaterOnly);
            for &j in hood.ids {
                let other = EntityId(j);
                let w = weigher.weight(pivot, other, hood.score_of(j));
                sink(pivot, other, w);
            }
        }
    }

    /// Invokes `sink(i, neighbors, weights)` for every node with a
    /// non-empty neighborhood; `neighbors[k]` has weight `weights[k]`.
    ///
    /// This is the node-centric view used by CNP/WNP and their redefined and
    /// reciprocal variants. The buffers are reused across nodes.
    pub fn for_each_neighborhood(
        ctx: &GraphContext<'_>,
        weigher: &EdgeWeigher<'_, '_>,
        mut sink: impl FnMut(EntityId, &[u32], &[f64]),
    ) {
        let mut scanner = NeighborhoodScanner::new(ctx.num_entities());
        let accumulate = weigher.scheme().accumulate();
        let mut ids: Vec<u32> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let n = ctx.num_entities() as u32;
        for raw in 0..n {
            let pivot = EntityId(raw);
            let hood = scanner.scan(ctx, pivot, accumulate, ScanScope::All);
            if hood.ids.is_empty() {
                continue;
            }
            ids.clear();
            weights.clear();
            ids.extend_from_slice(hood.ids);
            for &j in &ids {
                weights.push(weigher.weight(pivot, EntityId(j), hood.score_of(j)));
            }
            sink(pivot, &ids, &weights);
        }
    }
}

/// Original Edge Weighting (Algorithm 2) — the baseline the paper improves.
pub mod original {
    use super::*;
    use er_model::ErKind;

    /// Invokes `sink(i, j, weight)` for every distinct edge, discovering
    /// edges by iterating all comparisons of all blocks and filtering with
    /// the LeCoBI condition, exactly as Algorithm 2 does.
    pub fn for_each_edge(
        ctx: &GraphContext<'_>,
        weigher: &EdgeWeigher<'_, '_>,
        mut sink: impl FnMut(EntityId, EntityId, f64),
    ) {
        let arcs =
            weigher.scheme().accumulate() == crate::scanner::Accumulate::ReciprocalCardinalities;
        let dirty = ctx.kind() == ErKind::Dirty;
        for (k, block) in ctx.blocks().iter().enumerate() {
            let k = k as u32;
            let mut handle = |a: EntityId, b: EntityId| {
                if let Some(score) = lecobi_score(ctx, a, b, k, arcs) {
                    sink(a, b, weigher.weight(a, b, score));
                }
            };
            if dirty {
                let members = block.left();
                for (x, &a) in members.iter().enumerate() {
                    for &b in &members[x + 1..] {
                        if a < b {
                            handle(a, b);
                        } else {
                            handle(b, a);
                        }
                    }
                }
            } else {
                for &a in block.left() {
                    for &b in block.right() {
                        handle(a, b);
                    }
                }
            }
        }
    }

    /// Node-centric edge weighting with the original per-edge cost model:
    /// for every node, its distinct neighbors are gathered from its blocks
    /// and each incident edge is weighted by a full block-list intersection
    /// (`O(2·BPE)` per edge, twice per edge over the whole pass) — how the
    /// original CNP/WNP implementations operated before Algorithm 3.
    pub fn for_each_neighborhood(
        ctx: &GraphContext<'_>,
        weigher: &EdgeWeigher<'_, '_>,
        mut sink: impl FnMut(EntityId, &[u32], &[f64]),
    ) {
        let arcs =
            weigher.scheme().accumulate() == crate::scanner::Accumulate::ReciprocalCardinalities;
        let mut scanner = NeighborhoodScanner::new(ctx.num_entities());
        let mut ids: Vec<u32> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let n = ctx.num_entities() as u32;
        for raw in 0..n {
            let pivot = EntityId(raw);
            // Gather distinct neighbors (the scan is used purely as a
            // deduplicating set here; the scores are discarded).
            let hood =
                scanner.scan(ctx, pivot, crate::scanner::Accumulate::CommonBlocks, ScanScope::All);
            if hood.ids.is_empty() {
                continue;
            }
            ids.clear();
            weights.clear();
            ids.extend_from_slice(hood.ids);
            for &j in &ids {
                let score = intersect_score(ctx, pivot, EntityId(j), arcs);
                weights.push(weigher.weight(pivot, EntityId(j), score));
            }
            sink(pivot, &ids, &weights);
        }
    }

    /// Full block-list intersection of a co-occurring pair: `|B_ij|`, or
    /// `Σ 1/‖b‖` when `arcs` is set.
    fn intersect_score(ctx: &GraphContext<'_>, a: EntityId, b: EntityId, arcs: bool) -> f64 {
        let (mut x, mut y) = (ctx.index().block_list(a), ctx.index().block_list(b));
        let mut score = 0.0;
        while let (Some(&m), Some(&n)) = (x.first(), y.first()) {
            match m.cmp(&n) {
                std::cmp::Ordering::Less => x = &x[1..],
                std::cmp::Ordering::Greater => y = &y[1..],
                std::cmp::Ordering::Equal => {
                    score += if arcs { 1.0 / ctx.cardinality_of(m as usize) } else { 1.0 };
                    x = &x[1..];
                    y = &y[1..];
                }
            }
        }
        score
    }

    /// The core of Algorithm 2 (lines 7–15): intersect the block lists of
    /// `a` and `b`; abort as soon as the first common id differs from `k`
    /// (redundant comparison); otherwise return the accumulated score —
    /// `|B_ij|`, or `Σ 1/‖b‖` when `arcs` is set.
    fn lecobi_score(
        ctx: &GraphContext<'_>,
        a: EntityId,
        b: EntityId,
        k: u32,
        arcs: bool,
    ) -> Option<f64> {
        let (mut x, mut y) = (ctx.index().block_list(a), ctx.index().block_list(b));
        let mut score = 0.0;
        let mut first = true;
        while let (Some(&m), Some(&n)) = (x.first(), y.first()) {
            match m.cmp(&n) {
                std::cmp::Ordering::Less => x = &x[1..],
                std::cmp::Ordering::Greater => y = &y[1..],
                std::cmp::Ordering::Equal => {
                    if first {
                        if m != k {
                            return None; // violates LeCoBI: redundant here
                        }
                        first = false;
                    }
                    score += if arcs { 1.0 / ctx.cardinality_of(m as usize) } else { 1.0 };
                    x = &x[1..];
                    y = &y[1..];
                }
            }
        }
        if first {
            None // no common block at all (cannot happen inside a block)
        } else {
            Some(score)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use er_model::{Block, BlockCollection, ErKind};
    use std::collections::BTreeMap;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            5,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[1, 2, 3])),
                Block::dirty(ids(&[2, 4])),
            ],
        )
    }

    fn collect_edges(
        f: impl FnOnce(&mut dyn FnMut(EntityId, EntityId, f64)),
    ) -> BTreeMap<(u32, u32), f64> {
        let mut out = BTreeMap::new();
        let mut sink = |a: EntityId, b: EntityId, w: f64| {
            let key = (a.0.min(b.0), a.0.max(b.0));
            assert!(out.insert(key, w).is_none(), "edge {key:?} visited twice");
        };
        f(&mut sink);
        out
    }

    #[test]
    fn optimized_and_original_agree_on_every_scheme() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        for scheme in WeightingScheme::ALL {
            let weigher = EdgeWeigher::new(scheme, &ctx);
            let fast = collect_edges(|sink| optimized::for_each_edge(&ctx, &weigher, sink));
            let slow = collect_edges(|sink| original::for_each_edge(&ctx, &weigher, sink));
            assert_eq!(fast.len(), slow.len(), "{}", scheme.name());
            for (edge, w) in &fast {
                let w2 = slow[edge];
                assert!(
                    (w - w2).abs() < 1e-9,
                    "{}: edge {edge:?}: optimized={w}, original={w2}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn edge_set_matches_distinct_comparisons() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let edges = collect_edges(|sink| optimized::for_each_edge(&ctx, &weigher, sink));
        // Distinct pairs: (0,1),(0,2),(1,2),(1,3),(2,3),(2,4) = 6.
        assert_eq!(edges.len(), 6);
        assert_eq!(edges[&(0, 1)], 2.0);
        assert_eq!(edges[&(1, 2)], 2.0);
        assert_eq!(edges[&(2, 4)], 1.0);
    }

    #[test]
    fn neighborhoods_cover_each_edge_twice() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Js, &ctx);
        let mut seen: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let mut weights_match = true;
        optimized::for_each_neighborhood(&ctx, &weigher, |i, ids, ws| {
            for (&j, &w) in ids.iter().zip(ws) {
                let key = (i.0.min(j), i.0.max(j));
                *seen.entry(key).or_default() += 1;
                // JS is symmetric: both directions must agree.
                let sym = weigher.weight(
                    EntityId(key.0),
                    EntityId(key.1),
                    ctx.index().common_blocks(EntityId(key.0), EntityId(key.1)) as f64,
                );
                if (w - sym).abs() > 1e-9 {
                    weights_match = false;
                }
            }
        });
        assert!(weights_match);
        assert_eq!(seen.len(), 6);
        assert!(seen.values().all(|&c| c == 2));
    }

    #[test]
    fn clean_clean_edges_enumerated_once() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            4,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[2, 3])),
                Block::clean_clean(ids(&[0]), ids(&[2])),
            ],
        );
        let ctx = GraphContext::new(&blocks, 2);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let fast = collect_edges(|sink| optimized::for_each_edge(&ctx, &weigher, sink));
        let slow = collect_edges(|sink| original::for_each_edge(&ctx, &weigher, sink));
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 4);
        assert_eq!(fast[&(0, 2)], 2.0);
    }
}
