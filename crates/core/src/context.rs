//! The implicit blocking graph.
//!
//! "The blocking graph cannot be materialized in memory in the scale of
//! million nodes and billion edges. Instead, it is implemented implicitly"
//! (§4.2): every non-redundant comparison in the block collection *is* an
//! edge. [`GraphContext`] bundles the state every graph traversal needs —
//! the entity index, the per-block cardinalities and the task kind — without
//! ever storing an edge list.

use er_model::{BlockCollection, EntityId, EntityIndex, ErKind};

/// Shared state for implicit blocking-graph traversals.
#[derive(Debug)]
pub struct GraphContext<'b> {
    blocks: &'b BlockCollection,
    index: EntityIndex,
    /// `‖b‖` per block, pre-computed because ARCS divides by it for every
    /// common block of every edge.
    cardinalities: Vec<f64>,
    /// `1 / ‖b‖` per block: the ARCS hot loop multiplies by this instead of
    /// dividing, which is several times cheaper per common block. Stored as
    /// the exact IEEE result of `1.0 / cardinalities[k]`, so summing the
    /// reciprocals is bit-identical to dividing inline.
    recip_cardinalities: Vec<f64>,
    split: usize,
}

impl<'b> GraphContext<'b> {
    /// Builds the context (entity index + block cardinalities) for a block
    /// collection.
    ///
    /// `split` is the id boundary between the two collections for
    /// Clean-Clean ER (see [`er_model::EntityCollection::split`]); pass the
    /// collection size (or use [`GraphContext::new_dirty`]) for Dirty ER.
    pub fn new(blocks: &'b BlockCollection, split: usize) -> Self {
        let index = EntityIndex::build(blocks);
        Self::with_index(blocks, index, split)
    }

    /// Like [`GraphContext::new`], but builds the entity index with up to
    /// `threads` workers ([`EntityIndex::build_parallel`]). The resulting
    /// context is bit-identical to the sequential one for any thread count.
    pub fn new_parallel(blocks: &'b BlockCollection, split: usize, threads: usize) -> Self {
        let index = EntityIndex::build_parallel(blocks, threads);
        Self::with_index(blocks, index, split)
    }

    fn with_index(blocks: &'b BlockCollection, index: EntityIndex, split: usize) -> Self {
        let cardinalities: Vec<f64> = blocks.iter().map(|b| b.cardinality() as f64).collect();
        let recip_cardinalities = cardinalities.iter().map(|&c| 1.0 / c).collect();
        GraphContext { blocks, index, cardinalities, recip_cardinalities, split }
    }

    /// Builds the context around an index that already exists — the snapshot
    /// load path, where the persisted [`EntityIndex`] must be reused instead
    /// of being re-derived from the blocks.
    ///
    /// The caller is responsible for `index` actually indexing `blocks`
    /// ([`EntityIndex::validate`] checks that); under the `sanitize` feature
    /// the correspondence is verified here.
    pub fn from_index(blocks: &'b BlockCollection, index: EntityIndex, split: usize) -> Self {
        #[cfg(feature = "sanitize")]
        er_model::sanitize::assert_valid(&index.validate(blocks), "GraphContext::from_index");
        Self::with_index(blocks, index, split)
    }

    /// Decomposes the context, handing back ownership of its entity index
    /// (the inverse of [`GraphContext::from_index`]).
    pub fn into_index(self) -> EntityIndex {
        self.index
    }

    /// Context for a Dirty-ER block collection.
    pub fn new_dirty(blocks: &'b BlockCollection) -> Self {
        debug_assert_eq!(blocks.kind(), ErKind::Dirty);
        let n = blocks.num_entities();
        Self::new(blocks, n)
    }

    /// The underlying block collection.
    pub fn blocks(&self) -> &'b BlockCollection {
        self.blocks
    }

    /// The entity index over the block collection.
    pub fn index(&self) -> &EntityIndex {
        &self.index
    }

    /// The task kind of the block collection.
    pub fn kind(&self) -> ErKind {
        self.blocks.kind()
    }

    /// `|E|`: number of entities in the input collection.
    pub fn num_entities(&self) -> usize {
        self.blocks.num_entities()
    }

    /// `‖b_k‖` as `f64`, for the ARCS denominator.
    #[inline]
    pub fn cardinality_of(&self, block: usize) -> f64 {
        self.cardinalities[block]
    }

    /// `1 / ‖b_k‖`, the pre-inverted ARCS denominator.
    #[inline]
    pub fn recip_cardinality_of(&self, block: usize) -> f64 {
        self.recip_cardinalities[block]
    }

    /// Whether two profiles may be compared under the task kind: always (if
    /// distinct) for Dirty ER, only across the two collections for
    /// Clean-Clean ER.
    #[inline]
    pub fn comparable(&self, a: EntityId, b: EntityId) -> bool {
        a != b && (self.kind() == ErKind::Dirty || (a.idx() < self.split) != (b.idx() < self.split))
    }

    /// Whether `id` belongs to the first collection (always true for Dirty
    /// ER).
    #[inline]
    pub fn is_first(&self, id: EntityId) -> bool {
        id.idx() < self.split
    }

    /// The Clean-Clean id boundary (collection size for Dirty ER).
    pub fn split(&self) -> usize {
        self.split
    }

    /// `|B_i|`: number of blocks containing `id`.
    #[inline]
    pub fn num_blocks_of(&self, id: EntityId) -> usize {
        self.index.num_blocks_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::Block;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    #[test]
    fn dirty_context_basics() {
        let blocks = BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![Block::dirty(ids(&[0, 1, 2])), Block::dirty(ids(&[2, 3]))],
        );
        let ctx = GraphContext::new_dirty(&blocks);
        assert_eq!(ctx.num_entities(), 4);
        assert_eq!(ctx.cardinality_of(0), 3.0);
        assert_eq!(ctx.cardinality_of(1), 1.0);
        assert_eq!(ctx.recip_cardinality_of(0), 1.0 / 3.0);
        assert_eq!(ctx.recip_cardinality_of(1), 1.0);
        assert!(ctx.comparable(EntityId(0), EntityId(3)));
        assert!(!ctx.comparable(EntityId(1), EntityId(1)));
        assert_eq!(ctx.num_blocks_of(EntityId(2)), 2);
    }

    #[test]
    fn clean_clean_comparability() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            4,
            vec![Block::clean_clean(ids(&[0, 1]), ids(&[2, 3]))],
        );
        let ctx = GraphContext::new(&blocks, 2);
        assert!(ctx.comparable(EntityId(0), EntityId(2)));
        assert!(!ctx.comparable(EntityId(0), EntityId(1)));
        assert!(!ctx.comparable(EntityId(2), EntityId(3)));
        assert!(ctx.is_first(EntityId(1)));
        assert!(!ctx.is_first(EntityId(2)));
    }
}
