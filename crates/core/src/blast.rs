//! BLAST-style meta-blocking (Simonini, Bergamaschi & Jagadish, VLDB'16) —
//! the strongest weight-based follow-on to this paper's schemes, included
//! as an extension for cross-comparison.
//!
//! Two ideas distinguish BLAST from the WNP family:
//!
//! * **Chi-square weighting** — instead of counting shared blocks, edge
//!   weights test the *statistical significance* of the co-occurrence via
//!   Pearson's χ² over the 2×2 contingency table of block membership
//!   (entity i in/out of a block × entity j in/out of it). A pair sharing 2
//!   of its 3 blocks scores far higher than one sharing 2 of 40.
//! * **Max-ratio pruning** — a node-centric weight threshold derived from
//!   the neighborhood *maxima* rather than means: edge (i, j) survives iff
//!   `w ≥ c · (max_i + max_j) / 2`, with `c ∈ (0, 1]` (BLAST's default
//!   0.35). Unlike the mean, the max is robust to how many weak edges a
//!   node has.
//!
//! Like Redefined/Reciprocal pruning, the output contains no redundant
//! comparisons: each edge is evaluated once against both endpoints'
//! thresholds.

use crate::context::GraphContext;
use crate::scanner::{Accumulate, NeighborhoodScanner, ScanScope};
use er_model::EntityId;

/// BLAST's default pruning factor.
pub const DEFAULT_RATIO: f64 = 0.35;

/// Pearson's χ² weight of an edge, from the 2×2 contingency table of block
/// membership.
///
/// With `n11 = |B_ij|`, `n1• = |B_i|`, `n•1 = |B_j|` and `n = |B|`:
/// the table is `[[n11, |B_i|−n11], [|B_j|−n11, n − |B_i| − |B_j| + n11]]`
/// and χ² = n·(n11·n22 − n12·n21)² / (n1•·n2•·n•1·n•2).
///
/// Degenerate margins (an entity in every block or in none) yield 0.
pub fn chi_square(common: f64, blocks_i: f64, blocks_j: f64, total_blocks: f64) -> f64 {
    let n11 = common;
    let n12 = blocks_i - common;
    let n21 = blocks_j - common;
    let n22 = total_blocks - blocks_i - blocks_j + common;
    let row1 = n11 + n12;
    let row2 = n21 + n22;
    let col1 = n11 + n21;
    let col2 = n12 + n22;
    let denom = row1 * row2 * col1 * col2;
    if denom <= 0.0 {
        return 0.0;
    }
    let det = n11 * n22 - n12 * n21;
    // Only positive association counts: a pair co-occurring significantly
    // LESS than independence predicts also has a large χ², but it signals a
    // non-match.
    if det <= 0.0 {
        return 0.0;
    }
    total_blocks * det * det / denom
}

/// Runs BLAST pruning over the blocking graph: χ² weights, per-node maxima,
/// and the `c·(max_i + max_j)/2` retention rule. Emits each retained edge
/// once.
///
/// # Panics
/// If `c` is outside `(0, 1]`.
pub fn blast(ctx: &GraphContext<'_>, c: f64, mut sink: impl FnMut(EntityId, EntityId)) {
    assert!(c > 0.0 && c <= 1.0, "pruning factor c must lie in (0, 1]");
    let n = ctx.num_entities();
    let total_blocks = ctx.blocks().size() as f64;
    let mut scanner = NeighborhoodScanner::new(n);

    // Phase 1: the maximum incident χ² weight per node.
    let mut max_weight = vec![0.0f64; n];
    for raw in 0..n as u32 {
        let pivot = EntityId(raw);
        let hood = scanner.scan(ctx, pivot, Accumulate::CommonBlocks, ScanScope::All);
        let bi = ctx.num_blocks_of(pivot) as f64;
        let mut best = 0.0f64;
        for (j, score) in hood.iter() {
            let w = chi_square(score, bi, ctx.num_blocks_of(j) as f64, total_blocks);
            if w > best {
                best = w;
            }
        }
        max_weight[pivot.idx()] = best;
    }

    // Phase 2: edge-centric retention against both endpoints' thresholds.
    for raw in 0..n as u32 {
        let pivot = EntityId(raw);
        if !ctx.is_first(pivot) {
            continue;
        }
        let hood = scanner.scan(ctx, pivot, Accumulate::CommonBlocks, ScanScope::GreaterOnly);
        let bi = ctx.num_blocks_of(pivot) as f64;
        for (j, score) in hood.iter() {
            let w = chi_square(score, bi, ctx.num_blocks_of(j) as f64, total_blocks);
            let threshold = c * (max_weight[pivot.idx()] + max_weight[j.idx()]) / 2.0;
            if w >= threshold && w > 0.0 {
                sink(pivot, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, BlockCollection, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    #[test]
    fn chi_square_formula() {
        // Perfect association: i and j appear in exactly the same 2 of 10
        // blocks -> table [[2,0],[0,8]] -> χ² = 10·(16)²/(2·8·2·8) = 10.
        assert!((chi_square(2.0, 2.0, 2.0, 10.0) - 10.0).abs() < 1e-12);
        // Independence: det = 0.
        // [[1,1],[1,1]] with n = 4: χ² = 0.
        assert_eq!(chi_square(1.0, 2.0, 2.0, 4.0), 0.0);
        // Degenerate margins.
        assert_eq!(chi_square(3.0, 3.0, 3.0, 3.0), 0.0);
        assert_eq!(chi_square(0.0, 0.0, 0.0, 5.0), 0.0);
    }

    #[test]
    fn chi_square_rewards_significant_co_occurrence() {
        // Sharing 2 of 3 blocks beats sharing 2 of 5 (out of 40 blocks).
        let tight = chi_square(2.0, 3.0, 3.0, 40.0);
        let loose = chi_square(2.0, 5.0, 5.0, 40.0);
        assert!(tight > loose && loose > 0.0);
        // Negative association (sharing far less than independence
        // predicts) is clamped to zero.
        assert_eq!(chi_square(2.0, 20.0, 20.0, 40.0), 0.0);
    }

    /// (0,1) share 2 blocks out of few; (2,3) and the rest share 1 noisy
    /// block each.
    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            6,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[2, 3])),
                Block::dirty(ids(&[0, 2, 4, 5])),
                Block::dirty(ids(&[1, 3, 4, 5])),
            ],
        )
    }

    fn collect(blocks: &BlockCollection, c: f64) -> Vec<(u32, u32)> {
        let ctx = GraphContext::new_dirty(blocks);
        let mut out = Vec::new();
        blast(&ctx, c, |a, b| out.push((a.0, b.0)));
        out.sort_unstable();
        out
    }

    #[test]
    fn keeps_the_significant_pairs() {
        let got = collect(&fixture(), DEFAULT_RATIO);
        assert!(got.contains(&(0, 1)), "{got:?}");
        assert!(got.contains(&(2, 3)), "{got:?}");
        // The big noisy blocks' pairs are pruned relative to the maxima.
        assert!(got.len() < 10, "{got:?}"); // well below all 13 distinct pairs
    }

    #[test]
    fn larger_c_prunes_more() {
        let loose = collect(&fixture(), 0.1);
        let strict = collect(&fixture(), 1.0);
        assert!(strict.len() <= loose.len());
        for p in &strict {
            assert!(loose.contains(p));
        }
    }

    #[test]
    fn no_redundant_comparisons() {
        let got = collect(&fixture(), DEFAULT_RATIO);
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(got, dedup);
    }

    #[test]
    #[should_panic(expected = "pruning factor")]
    fn c_is_validated() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        blast(&ctx, 0.0, |_, _| {});
    }

    #[test]
    fn clean_clean_blast() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            4,
            vec![
                Block::clean_clean(ids(&[0]), ids(&[2])),
                Block::clean_clean(ids(&[0]), ids(&[2])),
                Block::clean_clean(ids(&[0, 1]), ids(&[2, 3])),
                Block::clean_clean(ids(&[1]), ids(&[3])),
                Block::clean_clean(ids(&[1]), ids(&[3])),
            ],
        );
        let ctx = GraphContext::new(&blocks, 2);
        let mut out = Vec::new();
        blast(&ctx, DEFAULT_RATIO, |a, b| out.push((a.0, b.0)));
        assert!(out.contains(&(0, 2)));
        for (a, b) in out {
            assert!(a < 2 && b >= 2);
        }
    }
}
