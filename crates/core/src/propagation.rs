//! Comparison Propagation (Papadakis et al., TKDE'13).
//!
//! Removes *all* redundant comparisons from a block collection with no
//! impact on recall: a comparison is executed only in the least common block
//! of its pair (the LeCoBI condition). This is both a standalone
//! block-processing baseline (§2) and the second stage of Graph-free
//! Meta-blocking (§4.1, Figure 7b).

use crate::context::GraphContext;
use crate::scanner::{Accumulate, NeighborhoodScanner, ScanScope};
use er_model::EntityId;

/// Emits every *distinct* comparison of the block collection exactly once.
///
/// ```
/// use er_blocking::{fixtures, BlockingMethod, TokenBlocking};
/// use mb_core::{propagation, GraphContext};
///
/// let blocks = TokenBlocking.build(&fixtures::figure1_collection());
/// let ctx = GraphContext::new_dirty(&blocks);
/// let mut distinct = 0;
/// propagation::comparison_propagation(&ctx, |_, _| distinct += 1);
/// // 13 blocked comparisons, 3 of them redundant (§1).
/// assert_eq!(distinct, 10);
/// ```
///
/// Implemented with the ScanCount sweep rather than per-comparison LeCoBI
/// checks: both yield the identical distinct-comparison set, but the sweep
/// costs `O(‖B‖)` instead of `O(2·BPE·‖B‖)` — the same optimization that
/// Algorithm 3 brings to edge weighting, applied to plain deduplication.
pub fn comparison_propagation(ctx: &GraphContext<'_>, mut sink: impl FnMut(EntityId, EntityId)) {
    let mut scanner = NeighborhoodScanner::new(ctx.num_entities());
    let n = ctx.num_entities() as u32;
    for raw in 0..n {
        let pivot = EntityId(raw);
        if !ctx.is_first(pivot) {
            continue; // Clean-Clean: each edge charged to its left endpoint.
        }
        let hood = scanner.scan(ctx, pivot, Accumulate::CommonBlocks, ScanScope::GreaterOnly);
        for &j in hood.ids {
            sink(pivot, EntityId(j));
        }
    }
}

/// Emits every distinct comparison using the literal per-comparison LeCoBI
/// check of the TKDE'13 formulation — kept for the equivalence test and the
/// cost comparison; [`comparison_propagation`] is the production path.
pub fn comparison_propagation_lecobi(
    ctx: &GraphContext<'_>,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    for (k, block) in ctx.blocks().iter().enumerate() {
        block.for_each_comparison(|a, b| {
            if ctx.index().is_lecobi(a, b, er_model::BlockId::from_index(k)) {
                sink(a, b);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, BlockCollection, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn collect(f: impl FnOnce(&mut dyn FnMut(EntityId, EntityId))) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut sink = |a: EntityId, b: EntityId| out.push((a.0.min(b.0), a.0.max(b.0)));
        f(&mut sink);
        out
    }

    #[test]
    fn removes_exactly_the_redundant_comparisons() {
        // (0,1) repeats across two blocks; (1,2) appears once.
        let blocks = BlockCollection::new(
            ErKind::Dirty,
            3,
            vec![Block::dirty(ids(&[0, 1])), Block::dirty(ids(&[0, 1, 2]))],
        );
        let ctx = GraphContext::new_dirty(&blocks);
        let mut got = collect(|s| comparison_propagation(&ctx, s));
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(blocks.total_comparisons(), 4); // one redundant removed
    }

    #[test]
    fn scan_and_lecobi_formulations_agree() {
        let blocks = BlockCollection::new(
            ErKind::Dirty,
            6,
            vec![
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[1, 2, 3])),
                Block::dirty(ids(&[2, 3, 4, 5])),
                Block::dirty(ids(&[0, 5])),
            ],
        );
        let ctx = GraphContext::new_dirty(&blocks);
        let mut fast = collect(|s| comparison_propagation(&ctx, s));
        let mut slow = collect(|s| comparison_propagation_lecobi(&ctx, s));
        fast.sort_unstable();
        slow.sort_unstable();
        assert_eq!(fast, slow);
    }

    #[test]
    fn clean_clean_propagation() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            4,
            vec![
                Block::clean_clean(ids(&[0]), ids(&[2, 3])),
                Block::clean_clean(ids(&[0, 1]), ids(&[2])),
            ],
        );
        let ctx = GraphContext::new(&blocks, 2);
        let mut got = collect(|s| comparison_propagation(&ctx, s));
        got.sort_unstable();
        assert_eq!(got, vec![(0, 2), (0, 3), (1, 2)]);
    }
}
