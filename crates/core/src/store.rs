//! Storage abstraction for implicit blocking-graph traversals.
//!
//! [`GraphContext`] walks an owned, fully-decoded block arena. The
//! zero-copy serving path walks the same CSR structures while they are
//! still little-endian bytes inside one loaded snapshot buffer.
//! [`CandidateStore`] is the seam between them: everything the
//! neighborhood scanner, the degree pre-pass and the edge-weight formulas
//! read from a graph goes through this trait, and every accessor hands back
//! an [`er_model::U32s`] view so the storage variant is resolved once per
//! run, not once per element.
//!
//! The contract mirrors the owned structures exactly — same member order,
//! same side selection, same pre-inverted ARCS reciprocals — so a scorer
//! over any store is bit-identical to one over the owned arena.

use crate::context::GraphContext;
use er_model::{EntityId, ErKind, U32s};

/// Read access to one blocking graph: the block arena, the entity index and
/// the per-block statistics the traversals consume.
///
/// Implementations must present blocks and index postings in the exact
/// order the owned structures would (members ascending within a side,
/// block lists ascending per entity), because the scanner's
/// first-co-occurrence neighbor order — and through it every IEEE float
/// accumulation downstream — depends on it.
pub trait CandidateStore {
    /// The ER task kind of the collection.
    fn kind(&self) -> ErKind;

    /// The Clean-Clean id boundary (collection size for Dirty ER).
    fn split(&self) -> usize;

    /// `|E|`: number of entities in the input collection.
    fn num_entities(&self) -> usize;

    /// `|B|`: number of blocks.
    fn num_blocks(&self) -> usize;

    /// `B_i`: ids of the blocks containing `id`, ascending.
    fn block_list(&self, id: EntityId) -> U32s<'_>;

    /// The members of `block` a scan from the given direction compares
    /// against: the right (second-collection) side when `scan_right`, the
    /// left side otherwise. Dirty blocks keep every member on the left, so
    /// Dirty scans always pass `scan_right = false`.
    fn members_of(&self, block: usize, scan_right: bool) -> U32s<'_>;

    /// `1 / ‖b‖` for `block` — the pre-inverted ARCS denominator, stored as
    /// the exact IEEE result of `1.0 / cardinality` so accumulating it is
    /// bit-identical across store implementations.
    fn recip_cardinality_of(&self, block: usize) -> f64;

    /// `|B_i|`: number of blocks containing `id`.
    #[inline]
    fn num_blocks_of(&self, id: EntityId) -> usize {
        self.block_list(id).len()
    }

    /// Whether `id` belongs to the first collection (always true for Dirty
    /// ER).
    #[inline]
    fn is_first(&self, id: EntityId) -> bool {
        id.idx() < self.split()
    }

    /// Whether a scan pivoting on `id` compares against right-side members
    /// (only Clean-Clean scans from the first collection do).
    #[inline]
    fn scan_right(&self, pivot: EntityId) -> bool {
        self.kind() != ErKind::Dirty && self.is_first(pivot)
    }
}

impl CandidateStore for GraphContext<'_> {
    fn kind(&self) -> ErKind {
        GraphContext::kind(self)
    }

    fn split(&self) -> usize {
        GraphContext::split(self)
    }

    fn num_entities(&self) -> usize {
        GraphContext::num_entities(self)
    }

    fn num_blocks(&self) -> usize {
        self.blocks().size()
    }

    #[inline]
    fn block_list(&self, id: EntityId) -> U32s<'_> {
        U32s::Native(self.index().block_list(id))
    }

    #[inline]
    fn members_of(&self, block: usize, scan_right: bool) -> U32s<'_> {
        let b = self.blocks().block(block);
        U32s::Ids(if scan_right { b.right() } else { b.left() })
    }

    #[inline]
    fn recip_cardinality_of(&self, block: usize) -> f64 {
        GraphContext::recip_cardinality_of(self, block)
    }

    #[inline]
    fn num_blocks_of(&self, id: EntityId) -> usize {
        GraphContext::num_blocks_of(self, id)
    }

    #[inline]
    fn is_first(&self, id: EntityId) -> bool {
        GraphContext::is_first(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, BlockCollection};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    #[test]
    fn graph_context_store_mirrors_its_accessors() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            5,
            vec![
                Block::clean_clean(ids(&[0, 1]), ids(&[3, 4])),
                Block::clean_clean(ids(&[2]), ids(&[3])),
            ],
        );
        let ctx = GraphContext::new(&blocks, 3);
        let store: &dyn CandidateStore = &ctx;
        assert_eq!(store.kind(), ErKind::CleanClean);
        assert_eq!(store.split(), 3);
        assert_eq!(store.num_entities(), 5);
        assert_eq!(store.num_blocks(), 2);
        assert_eq!(store.block_list(EntityId(3)).to_vec(), vec![0, 1]);
        assert_eq!(store.num_blocks_of(EntityId(3)), 2);
        assert_eq!(store.members_of(0, false).to_vec(), vec![0, 1]);
        assert_eq!(store.members_of(0, true).to_vec(), vec![3, 4]);
        assert_eq!(store.recip_cardinality_of(0), 1.0 / 4.0);
        assert!(store.is_first(EntityId(2)));
        assert!(!store.is_first(EntityId(3)));
        assert!(store.scan_right(EntityId(0)));
        assert!(!store.scan_right(EntityId(4)));
    }

    #[test]
    fn dirty_store_scans_left_only() {
        let blocks = BlockCollection::new(ErKind::Dirty, 3, vec![Block::dirty(ids(&[0, 1, 2]))]);
        let ctx = GraphContext::new_dirty(&blocks);
        assert!(!CandidateStore::scan_right(&ctx, EntityId(0)));
        assert_eq!(CandidateStore::members_of(&ctx, 0, false).to_vec(), vec![0, 1, 2]);
    }
}
