//! The five edge-weighting schemes of Figure 4.
//!
//! All weights are "analogous to the likelihood that the incident entities
//! are matching"; only their relative order matters to the pruning
//! algorithms, so no normalization is applied (ECBS/EJS are unbounded).

use crate::context::GraphContext;
use crate::scanner::{Accumulate, NeighborhoodScanner, ScanScope};
use crate::store::CandidateStore;
use er_model::EntityId;

/// The weighting schemes of the meta-blocking framework (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightingScheme {
    /// Aggregate Reciprocal Comparisons: `Σ_{b∈B_ij} 1/‖b‖` — "the smaller
    /// the blocks two profiles share, the more likely they are to match".
    Arcs,
    /// Common Blocks: `|B_ij|` — the fundamental redundancy-positive signal.
    Cbs,
    /// Enhanced Common Blocks: `CBS · log(|B|/|B_i|) · log(|B|/|B_j|)` —
    /// discounts profiles placed in many blocks.
    Ecbs,
    /// Jaccard Similarity of the block lists:
    /// `|B_ij| / (|B_i| + |B_j| − |B_ij|)`.
    Js,
    /// Enhanced Jaccard Similarity: `JS · log(|E_B|/|v_i|) · log(|E_B|/|v_j|)`
    /// — discounts profiles with a high node degree.
    Ejs,
}

impl WeightingScheme {
    /// All five schemes, in the paper's order. Table 3/4/5 rows average over
    /// these.
    pub const ALL: [WeightingScheme; 5] = [
        WeightingScheme::Arcs,
        WeightingScheme::Cbs,
        WeightingScheme::Ecbs,
        WeightingScheme::Js,
        WeightingScheme::Ejs,
    ];

    /// The paper's abbreviation for the scheme.
    pub fn name(self) -> &'static str {
        match self {
            WeightingScheme::Arcs => "ARCS",
            WeightingScheme::Cbs => "CBS",
            WeightingScheme::Ecbs => "ECBS",
            WeightingScheme::Js => "JS",
            WeightingScheme::Ejs => "EJS",
        }
    }

    /// What the neighborhood scan must accumulate for this scheme.
    pub fn accumulate(self) -> Accumulate {
        match self {
            WeightingScheme::Arcs => Accumulate::ReciprocalCardinalities,
            _ => Accumulate::CommonBlocks,
        }
    }

    /// Whether the scheme needs the node-degree pre-pass (EJS only).
    pub fn needs_degrees(self) -> bool {
        matches!(self, WeightingScheme::Ejs)
    }

    /// The stable lowercase token used on command lines and in JSON configs
    /// (the [`std::fmt::Display`]/[`std::str::FromStr`] form).
    pub fn token(self) -> &'static str {
        match self {
            WeightingScheme::Arcs => "arcs",
            WeightingScheme::Cbs => "cbs",
            WeightingScheme::Ecbs => "ecbs",
            WeightingScheme::Js => "js",
            WeightingScheme::Ejs => "ejs",
        }
    }
}

impl std::fmt::Display for WeightingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl std::str::FromStr for WeightingScheme {
    type Err = String;

    /// Parses the CLI token (`arcs`, `cbs`, `ecbs`, `js`, `ejs`),
    /// case-insensitively.
    fn from_str(s: &str) -> Result<WeightingScheme, String> {
        let canon = s.trim().to_ascii_lowercase();
        WeightingScheme::ALL.into_iter().find(|w| w.token() == canon).ok_or_else(|| {
            format!("unknown weighting scheme '{s}' (expected one of arcs, cbs, ecbs, js, ejs)")
        })
    }
}

/// Node degrees `|v_i|` and graph size `|E_B|`, required by EJS.
///
/// Computed with one GreaterOnly scan sweep: `O(‖B‖)`.
#[derive(Debug, Clone)]
pub struct Degrees {
    /// `|v_i|` per entity id.
    pub per_node: Vec<u32>,
    /// `|E_B|`: the number of distinct edges in the blocking graph.
    pub total_edges: u64,
}

impl Degrees {
    /// Computes degrees over the blocking graph of `store`.
    pub fn compute<S: CandidateStore>(store: &S) -> Self {
        let n = store.num_entities();
        let mut per_node = vec![0u32; n];
        let mut total_edges = 0u64;
        let mut scanner = NeighborhoodScanner::new(n);
        for i in 0..n as u32 {
            let pivot = EntityId(i);
            // GreaterOnly visits each edge exactly once (for Clean-Clean ER
            // every right-side id exceeds every left-side id, so the edge is
            // charged to its left endpoint).
            let hood = scanner.scan(store, pivot, Accumulate::CommonBlocks, ScanScope::GreaterOnly);
            for &j in hood.ids {
                per_node[pivot.idx()] += 1;
                per_node[j as usize] += 1;
                total_edges += 1;
            }
        }
        Degrees { per_node, total_edges }
    }
}

/// Evaluates edge weights for one scheme over one blocking graph.
///
/// Construction computes whatever per-graph state the scheme needs (the
/// degree pre-pass for EJS); [`EdgeWeigher::weight`] is then `O(1)` given the
/// scanner's accumulated score.
///
/// ```
/// use er_blocking::{fixtures, BlockingMethod, TokenBlocking};
/// use er_model::EntityId;
/// use mb_core::weights::{EdgeWeigher, WeightingScheme};
/// use mb_core::GraphContext;
///
/// let blocks = TokenBlocking.build(&fixtures::figure1_collection());
/// let ctx = GraphContext::new_dirty(&blocks);
/// let js = EdgeWeigher::new(WeightingScheme::Js, &ctx);
/// // The p1–p3 edge of Figure 2(a): |B_13| = 2, |B_1| = 3, |B_3| = 5.
/// let w = js.weight(EntityId(0), EntityId(2), 2.0);
/// assert!((w - 2.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct EdgeWeigher<'c, 'b> {
    scheme: WeightingScheme,
    ctx: &'c GraphContext<'b>,
    degrees: Option<Degrees>,
}

impl<'c, 'b> EdgeWeigher<'c, 'b> {
    /// Prepares a weigher for `scheme` over the graph of `ctx`.
    pub fn new(scheme: WeightingScheme, ctx: &'c GraphContext<'b>) -> Self {
        let degrees = scheme.needs_degrees().then(|| Degrees::compute(ctx));
        EdgeWeigher { scheme, ctx, degrees }
    }

    /// Prepares a weigher reusing pre-computed degrees (EJS only).
    pub fn with_degrees(
        scheme: WeightingScheme,
        ctx: &'c GraphContext<'b>,
        degrees: Degrees,
    ) -> Self {
        EdgeWeigher { scheme, ctx, degrees: Some(degrees) }
    }

    /// The scheme being evaluated.
    pub fn scheme(&self) -> WeightingScheme {
        self.scheme
    }

    /// The weight of the edge `(i, j)` given `score` — the value accumulated
    /// by a [`NeighborhoodScanner`] scan with [`WeightingScheme::accumulate`].
    #[inline]
    pub fn weight(&self, i: EntityId, j: EntityId, score: f64) -> f64 {
        edge_weight(self.scheme, self.ctx, self.degrees.as_ref(), i, j, score)
    }
}

/// The shared formula core behind [`EdgeWeigher::weight`], taking degrees by
/// reference so callers that own their [`Degrees`] (the query-serving scorer)
/// can evaluate weights without cloning the per-node table.
#[inline]
pub(crate) fn edge_weight<S: CandidateStore>(
    scheme: WeightingScheme,
    store: &S,
    degrees: Option<&Degrees>,
    i: EntityId,
    j: EntityId,
    score: f64,
) -> f64 {
    let num_blocks = store.num_blocks() as f64;
    match scheme {
        WeightingScheme::Arcs => score,
        WeightingScheme::Cbs => score,
        WeightingScheme::Ecbs => {
            let bi = store.num_blocks_of(i) as f64;
            let bj = store.num_blocks_of(j) as f64;
            score * (num_blocks / bi).ln() * (num_blocks / bj).ln()
        }
        WeightingScheme::Js => {
            let bi = store.num_blocks_of(i) as f64;
            let bj = store.num_blocks_of(j) as f64;
            score / (bi + bj - score)
        }
        WeightingScheme::Ejs => {
            let bi = store.num_blocks_of(i) as f64;
            let bj = store.num_blocks_of(j) as f64;
            let js = score / (bi + bj - score);
            let degrees = match degrees {
                Some(d) => d,
                // Every caller computes degree statistics whenever the
                // scheme is EJS, so this arm marks a construction bug, not
                // a runtime condition.
                None => unreachable!("EJS weight evaluated without degree statistics"),
            };
            let e = degrees.total_edges as f64;
            let di = degrees.per_node[i.idx()].max(1) as f64;
            let dj = degrees.per_node[j.idx()].max(1) as f64;
            js * (e / di).ln() * (e / dj).ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, BlockCollection, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    /// b0={0,1} card 1, b1={0,1,2} card 3, b2={1,2} card 1.
    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            3,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[1, 2])),
            ],
        )
    }

    #[test]
    fn scheme_names_and_order() {
        let names: Vec<&str> = WeightingScheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["ARCS", "CBS", "ECBS", "JS", "EJS"]);
    }

    #[test]
    fn cbs_counts_common_blocks() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let w = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        // Pair (0,1) shares b0, b1 -> CBS = 2 (the score IS the weight).
        assert_eq!(w.weight(EntityId(0), EntityId(1), 2.0), 2.0);
    }

    #[test]
    fn arcs_sums_reciprocal_cardinalities() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let w = EdgeWeigher::new(WeightingScheme::Arcs, &ctx);
        // (0,1): blocks of card 1 and 3 -> 1 + 1/3.
        let score = 1.0 + 1.0 / 3.0;
        assert!((w.weight(EntityId(0), EntityId(1), score) - score).abs() < 1e-12);
    }

    #[test]
    fn js_formula() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let w = EdgeWeigher::new(WeightingScheme::Js, &ctx);
        // |B_0|=2, |B_1|=3, |B_01|=2 -> 2/(2+3-2) = 2/3.
        let got = w.weight(EntityId(0), EntityId(1), 2.0);
        assert!((got - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ecbs_discounts_prolific_profiles() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let w = EdgeWeigher::new(WeightingScheme::Ecbs, &ctx);
        // |B|=3, |B_0|=2, |B_1|=3 -> 2·ln(3/2)·ln(3/3) = 0 (profile 1 is in
        // every block, so it carries no signal).
        let got = w.weight(EntityId(0), EntityId(1), 2.0);
        assert!(got.abs() < 1e-12);
        // (0,2): share b1 only. |B_2|=2 -> 1·ln(1.5)·ln(1.5) > 0.
        let got02 = w.weight(EntityId(0), EntityId(2), 1.0);
        assert!((got02 - 1.5f64.ln().powi(2)).abs() < 1e-12);
    }

    #[test]
    fn degrees_cover_every_distinct_edge() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let d = Degrees::compute(&ctx);
        // Edges: (0,1),(0,2),(1,2).
        assert_eq!(d.total_edges, 3);
        assert_eq!(d.per_node, vec![2, 2, 2]);
    }

    #[test]
    fn ejs_uses_degrees() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let w = EdgeWeigher::new(WeightingScheme::Ejs, &ctx);
        // Complete graph on 3 nodes: every degree is 2, |E_B|=3.
        // EJS(0,1) = JS · ln(3/2)² = (2/3)·ln(1.5)².
        let got = w.weight(EntityId(0), EntityId(1), 2.0);
        let expect = (2.0 / 3.0) * 1.5f64.ln().powi(2);
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn clean_clean_degrees() {
        let blocks = BlockCollection::new(
            ErKind::CleanClean,
            4,
            vec![Block::clean_clean(ids(&[0, 1]), ids(&[2, 3]))],
        );
        let ctx = GraphContext::new(&blocks, 2);
        let d = Degrees::compute(&ctx);
        assert_eq!(d.total_edges, 4);
        assert_eq!(d.per_node, vec![2, 2, 2, 2]);
    }
}
