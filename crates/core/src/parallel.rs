//! Multi-threaded graph sweeps.
//!
//! The paper's algorithms are single-threaded; its related work scales
//! meta-blocking out with MapReduce (Papadakis et al., WSDM'12). This
//! module provides the shared-memory equivalent: the node range is
//! partitioned into contiguous chunks, each thread sweeps its chunk with a
//! private [`NeighborhoodScanner`], and per-chunk results are combined in
//! chunk order — so every parallel result is bit-identical to the
//! sequential one, regardless of thread count or scheduling.

use crate::context::GraphContext;
use crate::pipeline::PruningScheme;
use crate::prune::{Combine, WeightedEdge};
use crate::scanner::{Accumulate, NeighborhoodScanner, ScanScope};
use crate::weights::EdgeWeigher;
use er_model::EntityId;
use mb_observe::{Counter, Observer, Stage, StageScope};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Minimum nodes per chunk: below this, a thread's scanner setup outweighs
/// its sweep, so tiny inputs must not fan out across the whole thread pool
/// (a 2-entity collection on a 16-thread config would otherwise spawn 16
/// scanners for one edge).
const MIN_CHUNK: u32 = 256;

/// Splits `0..n` into at most `threads` contiguous chunks of near-equal
/// size, never smaller than [`MIN_CHUNK`] (except the only chunk of a
/// small input). Thin `u32` adapter over the one shared
/// [`er_model::chunk_ranges`] implementation (DESIGN.md §8: all parallel
/// stages must chunk identically).
fn chunks(n: u32, threads: usize) -> Vec<std::ops::Range<u32>> {
    er_model::chunk_ranges(n as usize, threads, MIN_CHUNK as usize)
        .into_iter()
        .map(|r| r.start as u32..r.end as u32)
        .collect()
}

/// Folds every distinct weighted edge into per-chunk accumulators, in
/// parallel. Returns the accumulators in chunk order (ascending node
/// ranges), so any order-insensitive merge — or an order-sensitive
/// concatenation — is deterministic.
pub fn fold_edges<T, I, F>(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    init: I,
    fold: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, EntityId, EntityId, f64) + Sync,
{
    let n = ctx.num_entities() as u32;
    let ranges = chunks(n, threads);
    let accumulate = weigher.scheme().accumulate();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let init = &init;
                let fold = &fold;
                scope.spawn(move || {
                    let mut acc = init();
                    let mut scanner = NeighborhoodScanner::new(ctx.num_entities());
                    for raw in range {
                        let pivot = EntityId(raw);
                        if !ctx.is_first(pivot) {
                            continue;
                        }
                        let hood = scanner.scan(ctx, pivot, accumulate, ScanScope::GreaterOnly);
                        for &j in hood.ids {
                            let other = EntityId(j);
                            fold(
                                &mut acc,
                                pivot,
                                other,
                                weigher.weight(pivot, other, hood.score_of(j)),
                            );
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Collects the edges satisfying `predicate`, in the sequential sweep's
/// order, using `threads` workers.
pub fn collect_edges_where<P>(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    predicate: P,
) -> Vec<(EntityId, EntityId)>
where
    P: Fn(EntityId, EntityId, f64) -> bool + Sync,
{
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        Vec::new,
        |acc: &mut Vec<(EntityId, EntityId)>, a, b, w| {
            if predicate(a, b, w) {
                acc.push((a, b));
            }
        },
    );
    parts.concat()
}

/// Comparison Propagation's distinct-comparison sweep on `threads` workers:
/// the same chunked node partition as the weighted sweeps, applied to the
/// weight-free ScanCount deduplication of
/// [`crate::propagation::comparison_propagation`]. Chunk-ordered
/// concatenation reproduces the sequential pivot-ascending emission order
/// exactly.
pub fn comparison_propagation(ctx: &GraphContext<'_>, threads: usize) -> Vec<(EntityId, EntityId)> {
    let n = ctx.num_entities() as u32;
    let ranges = chunks(n, threads);
    let parts: Vec<Vec<(EntityId, EntityId)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                scope.spawn(move || {
                    let mut acc = Vec::new();
                    let mut scanner = NeighborhoodScanner::new(ctx.num_entities());
                    for raw in range {
                        let pivot = EntityId(raw);
                        if !ctx.is_first(pivot) {
                            continue;
                        }
                        let hood = scanner.scan(
                            ctx,
                            pivot,
                            Accumulate::CommonBlocks,
                            ScanScope::GreaterOnly,
                        );
                        for &j in hood.ids {
                            acc.push((pivot, EntityId(j)));
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    parts.concat()
}

/// The global mean edge weight, computed with `threads` workers — the WEP
/// threshold.
pub fn mean_edge_weight(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
) -> Option<f64> {
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        || (0.0f64, 0u64),
        |acc, _a, _b, w| {
            acc.0 += w;
            acc.1 += 1;
        },
    );
    let (sum, count) = parts.into_iter().fold((0.0, 0), |(s, c), (ps, pc)| (s + ps, c + pc));
    (count > 0).then(|| sum / count as f64)
}

/// Parallel Weighted Edge Pruning: identical output to
/// [`crate::prune::wep`], `threads`-way parallel sweeps for both the mean
/// and the emission pass.
pub fn wep(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
) -> Vec<(EntityId, EntityId)> {
    match mean_edge_weight(ctx, weigher, threads) {
        None => Vec::new(),
        Some(mean) => {
            collect_edges_where(ctx, weigher, threads, |_a, _b, w| crate::prune::reaches(w, mean))
        }
    }
}

/// Parallel WEP with per-stage telemetry, used by
/// [`crate::MetaBlocking::run`] when the config asks for threads.
///
/// Counter totals are identical to the sequential [`crate::prune::wep`] for
/// any thread count: `edges_weighed` is the edge count in both the
/// [`Stage::EdgeWeighting`] (mean) and [`Stage::Pruning`] (emission)
/// records, and `retained_comparisons` matches the sink invocations —
/// chunk-ordered combination makes the output bit-identical to sequential.
pub fn wep_observed(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        || (0.0f64, 0u64),
        |acc, _a, _b, w| {
            acc.0 += w;
            acc.1 += 1;
        },
    );
    let (sum, count) = parts.into_iter().fold((0.0, 0), |(s, c), (ps, pc)| (s + ps, c + pc));
    scope.add(Counter::EdgesWeighed, count);
    scope.finish();
    if count == 0 {
        return;
    }
    let mean = sum / count as f64;
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        || (Vec::new(), 0u64),
        |acc: &mut (Vec<(EntityId, EntityId)>, u64), a, b, w| {
            acc.1 += 1;
            if crate::prune::reaches(w, mean) {
                acc.0.push((a, b));
            }
        },
    );
    let (mut edges, mut retained) = (0u64, 0u64);
    for (kept, swept) in parts {
        edges += swept;
        retained += kept.len() as u64;
        for (a, b) in kept {
            sink(a, b);
        }
    }
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Folds every non-empty node neighborhood into per-chunk accumulators, in
/// parallel — the node-centric analogue of [`fold_edges`], mirroring
/// [`crate::weighting::optimized::for_each_neighborhood`]: every pivot is
/// scanned with [`ScanScope::All`], empty neighborhoods are skipped, and the
/// `(ids, weights)` buffers are reused across a chunk's pivots.
///
/// Accumulators come back in chunk order (ascending node ranges), so a
/// chunk-ordered concatenation reproduces the sequential pivot-ascending
/// visit order exactly.
pub fn fold_neighborhoods<T, I, F>(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    init: I,
    fold: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, EntityId, &[u32], &[f64]) + Sync,
{
    let n = ctx.num_entities() as u32;
    let ranges = chunks(n, threads);
    let accumulate = weigher.scheme().accumulate();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let init = &init;
                let fold = &fold;
                scope.spawn(move || {
                    let mut acc = init();
                    let mut scanner = NeighborhoodScanner::new(ctx.num_entities());
                    let mut ids: Vec<u32> = Vec::new();
                    let mut weights: Vec<f64> = Vec::new();
                    for raw in range {
                        let pivot = EntityId(raw);
                        let hood = scanner.scan(ctx, pivot, accumulate, ScanScope::All);
                        if hood.ids.is_empty() {
                            continue;
                        }
                        ids.clear();
                        weights.clear();
                        ids.extend_from_slice(hood.ids);
                        for &j in &ids {
                            weights.push(weigher.weight(pivot, EntityId(j), hood.score_of(j)));
                        }
                        fold(&mut acc, pivot, &ids, &weights);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Parallel CEP with per-stage telemetry: each chunk keeps its own bounded
/// top-`K` min-heap; the per-chunk candidates are merged by sorting under
/// the [`WeightedEdge`] total order and truncating to `K` — the global
/// top-`K` is unique under that (strict) order, so the output is
/// bit-identical to [`crate::prune::cep`] for any thread count, including
/// the descending emission order.
pub fn cep_observed(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let k = crate::prune::cep_threshold(ctx);
    if k == 0 {
        return;
    }
    let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
    let prealloc = crate::prune::heap_prealloc(k);
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        || (BinaryHeap::with_capacity(prealloc), 0u64),
        |acc: &mut (BinaryHeap<Reverse<WeightedEdge>>, u64), a, b, w| {
            acc.1 += 1;
            crate::prune::push_top_k(&mut acc.0, WeightedEdge { w, a: a.0, b: b.0 }, k);
        },
    );
    let mut edges = 0u64;
    let mut retained: Vec<WeightedEdge> = Vec::new();
    for (heap, swept) in parts {
        edges += swept;
        retained.extend(heap.into_iter().map(|Reverse(e)| e));
    }
    scope.add(Counter::EdgesWeighed, edges);
    scope.finish();
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    retained.sort_unstable_by(|x, y| y.cmp(x));
    retained.truncate(k);
    #[cfg(feature = "sanitize")]
    assert!(
        retained.windows(2).all(|w| w[0] >= w[1]),
        "mb-sanitize: parallel CEP emission order is not descending by weight"
    );
    scope.add(Counter::RetainedComparisons, retained.len() as u64);
    for e in retained {
        sink(EntityId(e.a), EntityId(e.b));
    }
    scope.finish();
}

/// Parallel CNP (original directed semantics) with per-stage telemetry:
/// every chunk selects its pivots' top-`k` neighbors independently — the
/// selection depends only on the pivot's own neighborhood — and the
/// chunk-ordered concatenation reproduces [`crate::prune::cnp`] bit for bit.
pub fn cnp_observed(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let k = crate::prune::cnp_threshold(ctx);
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let parts = fold_neighborhoods(
        ctx,
        weigher,
        threads,
        || (Vec::new(), 0u64, 0u64),
        |acc: &mut (Vec<(EntityId, EntityId)>, u64, u64), pivot, ids, weights| {
            acc.1 += 1;
            acc.2 += ids.len() as u64;
            for j in crate::prune::top_k_neighbors(pivot, ids, weights, k) {
                acc.0.push((pivot, EntityId(j)));
            }
        },
    );
    let (mut hoods, mut edges, mut retained) = (0u64, 0u64, 0u64);
    for (kept, h, e) in parts {
        hoods += h;
        edges += e;
        retained += kept.len() as u64;
        for (a, b) in kept {
            sink(a, b);
        }
    }
    scope.add(Counter::NeighborhoodsScanned, hoods);
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Parallel WNP (original directed semantics) with per-stage telemetry:
/// the per-neighborhood mean threshold is local to each pivot, so chunks
/// are independent and the concatenation matches [`crate::prune::wnp`].
pub fn wnp_observed(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let parts = fold_neighborhoods(
        ctx,
        weigher,
        threads,
        || (Vec::new(), 0u64, 0u64),
        |acc: &mut (Vec<(EntityId, EntityId)>, u64, u64), pivot, ids, weights| {
            acc.1 += 1;
            acc.2 += ids.len() as u64;
            let mean = crate::prune::neighborhood_mean(weights);
            for (&j, &w) in ids.iter().zip(weights) {
                if crate::prune::reaches(w, mean) {
                    acc.0.push((pivot, EntityId(j)));
                }
            }
        },
    );
    let (mut hoods, mut edges, mut retained) = (0u64, 0u64, 0u64);
    for (kept, h, e) in parts {
        hoods += h;
        edges += e;
        retained += kept.len() as u64;
        for (a, b) in kept {
            sink(a, b);
        }
    }
    scope.add(Counter::NeighborhoodsScanned, hoods);
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Parallel two-phase CNP (Redefined with [`Combine::Either`], Reciprocal
/// with [`Combine::Both`]): phase 1 builds every node's sorted top-`k`
/// stack with a parallel neighborhood sweep; phase 2 intersects the stacks
/// with a parallel edge sweep. Both phases are chunk-deterministic, so the
/// result matches [`crate::prune::redefined_cnp`] /
/// [`crate::prune::reciprocal_cnp`] bit for bit.
pub(crate) fn two_phase_cnp_observed(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    combine: Combine,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let k = crate::prune::cnp_threshold(ctx);
    let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
    let parts = fold_neighborhoods(
        ctx,
        weigher,
        threads,
        || (Vec::new(), 0u64, 0u64),
        |acc: &mut (Vec<(u32, Vec<u32>)>, u64, u64), pivot, ids, weights| {
            acc.1 += 1;
            acc.2 += ids.len() as u64;
            acc.0.push((pivot.0, crate::prune::top_k_neighbors(pivot, ids, weights, k)));
        },
    );
    let mut stacks: Vec<Vec<u32>> = vec![Vec::new(); ctx.num_entities()];
    let (mut hoods, mut directed_edges) = (0u64, 0u64);
    for (chunk, h, e) in parts {
        hoods += h;
        directed_edges += e;
        for (pivot, stack) in chunk {
            stacks[pivot as usize] = stack;
        }
    }
    scope.add(Counter::NeighborhoodsScanned, hoods);
    scope.add(Counter::EdgesWeighed, directed_edges);
    scope.finish();
    #[cfg(feature = "sanitize")]
    for (i, s) in stacks.iter().enumerate() {
        assert!(
            s.len() <= k,
            "mb-sanitize: top-k stack of entity {i} holds {} neighbors, k = {k}",
            s.len()
        );
        assert!(
            s.windows(2).all(|w| w[0] < w[1]),
            "mb-sanitize: top-k stack of entity {i} is not strictly ascending"
        );
    }
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let stacks = &stacks;
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        || (Vec::new(), 0u64),
        |acc: &mut (Vec<(EntityId, EntityId)>, u64), a, b, _w| {
            acc.1 += 1;
            let in_a = stacks[a.idx()].binary_search(&b.0).is_ok();
            let in_b = stacks[b.idx()].binary_search(&a.0).is_ok();
            let retain = match combine {
                Combine::Either => in_a || in_b,
                Combine::Both => in_a && in_b,
            };
            if retain {
                acc.0.push((a, b));
            }
        },
    );
    let (mut edges, mut retained) = (0u64, 0u64);
    for (kept, swept) in parts {
        edges += swept;
        retained += kept.len() as u64;
        for (a, b) in kept {
            sink(a, b);
        }
    }
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Parallel two-phase WNP (Redefined with [`Combine::Either`], Reciprocal
/// with [`Combine::Both`]): phase 1 computes every node's local mean
/// threshold in parallel; phase 2 applies the thresholds with a parallel
/// edge sweep. Matches [`crate::prune::redefined_wnp`] /
/// [`crate::prune::reciprocal_wnp`] bit for bit.
pub(crate) fn two_phase_wnp_observed(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    combine: Combine,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
    let parts = fold_neighborhoods(
        ctx,
        weigher,
        threads,
        || (Vec::new(), 0u64, 0u64),
        |acc: &mut (Vec<(u32, f64)>, u64, u64), pivot, ids, weights| {
            acc.1 += 1;
            acc.2 += ids.len() as u64;
            acc.0.push((pivot.0, crate::prune::neighborhood_mean(weights)));
        },
    );
    // Nodes with no neighborhood keep +∞ — they have no edge to retain.
    let mut thresholds = vec![f64::INFINITY; ctx.num_entities()];
    let (mut hoods, mut directed_edges) = (0u64, 0u64);
    for (chunk, h, e) in parts {
        hoods += h;
        directed_edges += e;
        for (pivot, mean) in chunk {
            thresholds[pivot as usize] = mean;
        }
    }
    scope.add(Counter::NeighborhoodsScanned, hoods);
    scope.add(Counter::EdgesWeighed, directed_edges);
    scope.finish();
    #[cfg(feature = "sanitize")]
    for (i, &t) in thresholds.iter().enumerate() {
        assert!(!t.is_nan(), "mb-sanitize: WNP threshold of entity {i} is NaN");
    }
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let thresholds = &thresholds;
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        || (Vec::new(), 0u64),
        |acc: &mut (Vec<(EntityId, EntityId)>, u64), a, b, w| {
            acc.1 += 1;
            let over_a = crate::prune::reaches(w, thresholds[a.idx()]);
            let over_b = crate::prune::reaches(w, thresholds[b.idx()]);
            let retain = match combine {
                Combine::Either => over_a || over_b,
                Combine::Both => over_a && over_b,
            };
            if retain {
                acc.0.push((a, b));
            }
        },
    );
    let (mut edges, mut retained) = (0u64, 0u64);
    for (kept, swept) in parts {
        edges += swept;
        retained += kept.len() as u64;
        for (a, b) in kept {
            sink(a, b);
        }
    }
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Dispatches any pruning scheme to its parallel observed implementation —
/// the multi-threaded counterpart of the `match` in
/// [`crate::MetaBlocking::run`]. Output and counter totals are identical to
/// the sequential pruner for any thread count.
pub fn run_pruning_observed(
    scheme: PruningScheme,
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    obs: &mut dyn Observer,
    sink: impl FnMut(EntityId, EntityId),
) {
    match scheme {
        PruningScheme::Cep => cep_observed(ctx, weigher, threads, obs, sink),
        PruningScheme::Cnp => cnp_observed(ctx, weigher, threads, obs, sink),
        PruningScheme::Wep => wep_observed(ctx, weigher, threads, obs, sink),
        PruningScheme::Wnp => wnp_observed(ctx, weigher, threads, obs, sink),
        PruningScheme::RedefinedCnp => {
            two_phase_cnp_observed(ctx, weigher, threads, Combine::Either, obs, sink)
        }
        PruningScheme::ReciprocalCnp => {
            two_phase_cnp_observed(ctx, weigher, threads, Combine::Both, obs, sink)
        }
        PruningScheme::RedefinedWnp => {
            two_phase_wnp_observed(ctx, weigher, threads, Combine::Either, obs, sink)
        }
        PruningScheme::ReciprocalWnp => {
            two_phase_wnp_observed(ctx, weigher, threads, Combine::Both, obs, sink)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighting::optimized;
    use crate::weights::WeightingScheme;
    use er_model::{Block, BlockCollection, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            12,
            vec![
                Block::dirty(ids(&[0, 1, 2, 3])),
                Block::dirty(ids(&[2, 3, 4, 5])),
                Block::dirty(ids(&[5, 6, 7])),
                Block::dirty(ids(&[0, 7, 8, 9])),
                Block::dirty(ids(&[9, 10, 11])),
                Block::dirty(ids(&[1, 4, 10])),
            ],
        )
    }

    /// Enough entities to exceed the [`MIN_CHUNK`] floor several times over,
    /// so multi-chunk execution is actually exercised.
    fn large_fixture() -> BlockCollection {
        let n = MIN_CHUNK * 4 + 37;
        let mut blocks = Vec::new();
        for i in (0..n - 4).step_by(3) {
            blocks.push(Block::dirty(ids(&[i, i + 1, i + 2, i + 4])));
        }
        // A few long-range blocks so chunks see non-local neighbors.
        blocks.push(Block::dirty(ids(&[0, n / 2, n - 1])));
        blocks.push(Block::dirty(ids(&[3, n / 3, 2 * n / 3])));
        BlockCollection::new(ErKind::Dirty, n as usize, blocks)
    }

    #[test]
    fn chunking_covers_the_range() {
        for n in [0u32, 1, 7, 16, 255, 256, 257, 1000, 10_000] {
            for t in [1usize, 2, 3, 8, 100] {
                let cs = chunks(n, t);
                let total: u32 = cs.iter().map(|r| r.end - r.start).sum();
                assert_eq!(total, n, "n={n} t={t}");
                for w in cs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    /// Regression: a 2-entity input must not fan out across a 16-thread
    /// pool — tiny ranges collapse to a single chunk.
    #[test]
    fn chunking_floors_tiny_inputs_to_one_chunk() {
        assert_eq!(chunks(2, 16).len(), 1);
        assert_eq!(chunks(2, 16), vec![0..2]);
        assert_eq!(chunks(MIN_CHUNK, 100).len(), 1);
        // Just past the floor, a second chunk becomes useful — but no more.
        assert_eq!(chunks(MIN_CHUNK + 1, 100).len(), 2);
        // Large inputs still use every requested thread.
        assert_eq!(chunks(MIN_CHUNK * 8, 8).len(), 8);
    }

    #[test]
    fn parallel_matches_sequential_for_every_thread_count() {
        for blocks in [fixture(), large_fixture()] {
            let ctx = GraphContext::new_dirty(&blocks);
            for scheme in WeightingScheme::ALL {
                let weigher = EdgeWeigher::new(scheme, &ctx);
                let mut sequential = Vec::new();
                optimized::for_each_edge(&ctx, &weigher, |a, b, _| sequential.push((a, b)));
                for threads in [1, 2, 3, 4, 7] {
                    let parallel = collect_edges_where(&ctx, &weigher, threads, |_, _, _| true);
                    assert_eq!(parallel, sequential, "{} x{threads}", scheme.name());
                }
            }
        }
    }

    #[test]
    fn parallel_wep_equals_sequential_wep() {
        for blocks in [fixture(), large_fixture()] {
            let ctx = GraphContext::new_dirty(&blocks);
            for scheme in WeightingScheme::ALL {
                let weigher = EdgeWeigher::new(scheme, &ctx);
                let mut sequential = Vec::new();
                crate::prune::wep(
                    &ctx,
                    &weigher,
                    crate::weighting::WeightingImpl::Optimized,
                    &mut mb_observe::Noop,
                    |a, b| sequential.push((a, b)),
                );
                for threads in [1, 3, 8] {
                    assert_eq!(wep(&ctx, &weigher, threads), sequential, "{}", scheme.name());
                }
            }
        }
    }

    /// The acceptance criterion: every counter total is identical between a
    /// 1-thread and an N-thread observed run, and matches the sequential
    /// pruner's totals.
    #[test]
    fn wep_observed_counters_are_thread_count_invariant() {
        let blocks = large_fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Js, &ctx);
        let run = |threads: usize| {
            let mut report = mb_observe::RunReport::new("par");
            let mut out = Vec::new();
            wep_observed(&ctx, &weigher, threads, &mut report, |a, b| out.push((a, b)));
            (report, out)
        };
        let (seq_report, seq_out) = {
            let mut report = mb_observe::RunReport::new("seq");
            let mut out = Vec::new();
            crate::prune::wep(
                &ctx,
                &weigher,
                crate::weighting::WeightingImpl::Optimized,
                &mut report,
                |a, b| out.push((a, b)),
            );
            (report, out)
        };
        let (one_report, one_out) = run(1);
        assert_eq!(one_out, seq_out);
        for threads in [2, 4, 8, 16] {
            let (n_report, n_out) = run(threads);
            assert_eq!(n_out, one_out, "output differs at {threads} threads");
            for c in Counter::ALL {
                assert_eq!(
                    n_report.counter_total(c),
                    one_report.counter_total(c),
                    "counter {} differs at {threads} threads",
                    c.name()
                );
                assert_eq!(
                    n_report.counter_total(c),
                    seq_report.counter_total(c),
                    "counter {} differs from sequential",
                    c.name()
                );
            }
        }
    }

    fn run_sequential(
        scheme: PruningScheme,
        ctx: &GraphContext<'_>,
        weigher: &EdgeWeigher<'_, '_>,
    ) -> (mb_observe::RunReport, Vec<(EntityId, EntityId)>) {
        let imp = crate::weighting::WeightingImpl::Optimized;
        let mut report = mb_observe::RunReport::new("seq");
        let mut out = Vec::new();
        let sink = |a: EntityId, b: EntityId| out.push((a, b));
        match scheme {
            PruningScheme::Cep => crate::prune::cep(ctx, weigher, imp, &mut report, sink),
            PruningScheme::Cnp => crate::prune::cnp(ctx, weigher, imp, &mut report, sink),
            PruningScheme::Wep => crate::prune::wep(ctx, weigher, imp, &mut report, sink),
            PruningScheme::Wnp => crate::prune::wnp(ctx, weigher, imp, &mut report, sink),
            PruningScheme::RedefinedCnp => {
                crate::prune::redefined_cnp(ctx, weigher, imp, &mut report, sink)
            }
            PruningScheme::ReciprocalCnp => {
                crate::prune::reciprocal_cnp(ctx, weigher, imp, &mut report, sink)
            }
            PruningScheme::RedefinedWnp => {
                crate::prune::redefined_wnp(ctx, weigher, imp, &mut report, sink)
            }
            PruningScheme::ReciprocalWnp => {
                crate::prune::reciprocal_wnp(ctx, weigher, imp, &mut report, sink)
            }
        }
        (report, out)
    }

    /// The tentpole acceptance criterion, at the unit level: every pruning
    /// scheme's parallel output is bit-identical to its sequential output
    /// for every tested thread count, with identical counter totals.
    #[test]
    fn every_scheme_parallel_matches_sequential_with_invariant_counters() {
        let blocks = large_fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        for scheme in PruningScheme::ALL {
            let weigher = EdgeWeigher::new(WeightingScheme::Ecbs, &ctx);
            let (seq_report, seq_out) = run_sequential(scheme, &ctx, &weigher);
            for threads in [1, 2, 4, 8, 16] {
                let mut report = mb_observe::RunReport::new("par");
                let mut out = Vec::new();
                run_pruning_observed(scheme, &ctx, &weigher, threads, &mut report, |a, b| {
                    out.push((a, b))
                });
                assert_eq!(out, seq_out, "{} output differs at {threads} threads", scheme.name());
                for c in Counter::ALL {
                    assert_eq!(
                        report.counter_total(c),
                        seq_report.counter_total(c),
                        "{}: counter {} differs at {threads} threads",
                        scheme.name(),
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn every_scheme_parallel_handles_empty_graph() {
        let blocks = BlockCollection::new(ErKind::Dirty, 4, vec![]);
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        for scheme in PruningScheme::ALL {
            let mut out = Vec::new();
            run_pruning_observed(scheme, &ctx, &weigher, 4, &mut mb_observe::Noop, |a, b| {
                out.push((a, b))
            });
            assert!(out.is_empty(), "{}", scheme.name());
        }
    }

    #[test]
    fn mean_weight_agrees() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Js, &ctx);
        let (mut sum, mut count) = (0.0, 0u64);
        optimized::for_each_edge(&ctx, &weigher, |_, _, w| {
            sum += w;
            count += 1;
        });
        let seq_mean = sum / count as f64;
        for threads in [1, 2, 5] {
            let par = mean_edge_weight(&ctx, &weigher, threads).unwrap();
            assert!((par - seq_mean).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph() {
        let blocks = BlockCollection::new(ErKind::Dirty, 4, vec![]);
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        assert_eq!(mean_edge_weight(&ctx, &weigher, 4), None);
        assert!(wep(&ctx, &weigher, 4).is_empty());
    }
}
