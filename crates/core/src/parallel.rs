//! Multi-threaded graph sweeps.
//!
//! The paper's algorithms are single-threaded; its related work scales
//! meta-blocking out with MapReduce (Papadakis et al., WSDM'12). This
//! module provides the shared-memory equivalent: the node range is
//! partitioned into contiguous chunks, each thread sweeps its chunk with a
//! private [`NeighborhoodScanner`], and per-chunk results are combined in
//! chunk order — so every parallel result is bit-identical to the
//! sequential one, regardless of thread count or scheduling.

use crate::context::GraphContext;
use crate::scanner::{NeighborhoodScanner, ScanScope};
use crate::weights::EdgeWeigher;
use er_model::EntityId;

/// Splits `0..n` into at most `threads` contiguous chunks of near-equal
/// size.
fn chunks(n: u32, threads: usize) -> Vec<std::ops::Range<u32>> {
    let threads = threads.max(1).min(n.max(1) as usize);
    let per = n.div_ceil(threads as u32);
    (0..threads as u32)
        .map(|t| (t * per).min(n)..((t + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Folds every distinct weighted edge into per-chunk accumulators, in
/// parallel. Returns the accumulators in chunk order (ascending node
/// ranges), so any order-insensitive merge — or an order-sensitive
/// concatenation — is deterministic.
pub fn fold_edges<T, I, F>(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    init: I,
    fold: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, EntityId, EntityId, f64) + Sync,
{
    let n = ctx.num_entities() as u32;
    let ranges = chunks(n, threads);
    let accumulate = weigher.scheme().accumulate();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let init = &init;
                let fold = &fold;
                scope.spawn(move || {
                    let mut acc = init();
                    let mut scanner = NeighborhoodScanner::new(ctx.num_entities());
                    for raw in range {
                        let pivot = EntityId(raw);
                        if !ctx.is_first(pivot) {
                            continue;
                        }
                        let hood = scanner.scan(ctx, pivot, accumulate, ScanScope::GreaterOnly);
                        for &j in hood.ids {
                            let other = EntityId(j);
                            fold(
                                &mut acc,
                                pivot,
                                other,
                                weigher.weight(pivot, other, hood.score_of(j)),
                            );
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Collects the edges satisfying `predicate`, in the sequential sweep's
/// order, using `threads` workers.
pub fn collect_edges_where<P>(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
    predicate: P,
) -> Vec<(EntityId, EntityId)>
where
    P: Fn(EntityId, EntityId, f64) -> bool + Sync,
{
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        Vec::new,
        |acc: &mut Vec<(EntityId, EntityId)>, a, b, w| {
            if predicate(a, b, w) {
                acc.push((a, b));
            }
        },
    );
    parts.concat()
}

/// The global mean edge weight, computed with `threads` workers — the WEP
/// threshold.
pub fn mean_edge_weight(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
) -> Option<f64> {
    let parts = fold_edges(
        ctx,
        weigher,
        threads,
        || (0.0f64, 0u64),
        |acc, _a, _b, w| {
            acc.0 += w;
            acc.1 += 1;
        },
    );
    let (sum, count) = parts.into_iter().fold((0.0, 0), |(s, c), (ps, pc)| (s + ps, c + pc));
    (count > 0).then(|| sum / count as f64)
}

/// Parallel Weighted Edge Pruning: identical output to
/// [`crate::prune::wep`], `threads`-way parallel sweeps for both the mean
/// and the emission pass.
pub fn wep(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    threads: usize,
) -> Vec<(EntityId, EntityId)> {
    match mean_edge_weight(ctx, weigher, threads) {
        None => Vec::new(),
        Some(mean) => {
            collect_edges_where(ctx, weigher, threads, |_a, _b, w| w >= mean - mean * 1e-9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighting::optimized;
    use crate::weights::WeightingScheme;
    use er_model::{Block, BlockCollection, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            12,
            vec![
                Block::dirty(ids(&[0, 1, 2, 3])),
                Block::dirty(ids(&[2, 3, 4, 5])),
                Block::dirty(ids(&[5, 6, 7])),
                Block::dirty(ids(&[0, 7, 8, 9])),
                Block::dirty(ids(&[9, 10, 11])),
                Block::dirty(ids(&[1, 4, 10])),
            ],
        )
    }

    #[test]
    fn chunking_covers_the_range() {
        for n in [0u32, 1, 7, 16] {
            for t in [1usize, 2, 3, 8, 100] {
                let cs = chunks(n, t);
                let total: u32 = cs.iter().map(|r| r.end - r.start).sum();
                assert_eq!(total, n, "n={n} t={t}");
                for w in cs.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_for_every_thread_count() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        for scheme in WeightingScheme::ALL {
            let weigher = EdgeWeigher::new(scheme, &ctx);
            let mut sequential = Vec::new();
            optimized::for_each_edge(&ctx, &weigher, |a, b, _| sequential.push((a, b)));
            for threads in [1, 2, 3, 4, 7] {
                let parallel = collect_edges_where(&ctx, &weigher, threads, |_, _, _| true);
                assert_eq!(parallel, sequential, "{} x{threads}", scheme.name());
            }
        }
    }

    #[test]
    fn parallel_wep_equals_sequential_wep() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        for scheme in WeightingScheme::ALL {
            let weigher = EdgeWeigher::new(scheme, &ctx);
            let mut sequential = Vec::new();
            crate::prune::wep(
                &ctx,
                &weigher,
                crate::weighting::WeightingImpl::Optimized,
                |a, b| sequential.push((a, b)),
            );
            for threads in [1, 3, 8] {
                assert_eq!(wep(&ctx, &weigher, threads), sequential, "{}", scheme.name());
            }
        }
    }

    #[test]
    fn mean_weight_agrees() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Js, &ctx);
        let (mut sum, mut count) = (0.0, 0u64);
        optimized::for_each_edge(&ctx, &weigher, |_, _, w| {
            sum += w;
            count += 1;
        });
        let seq_mean = sum / count as f64;
        for threads in [1, 2, 5] {
            let par = mean_edge_weight(&ctx, &weigher, threads).unwrap();
            assert!((par - seq_mean).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph() {
        let blocks = BlockCollection::new(ErKind::Dirty, 4, vec![]);
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        assert_eq!(mean_edge_weight(&ctx, &weigher, 4), None);
        assert!(wep(&ctx, &weigher, 4).is_empty());
    }
}
