//! mb-sanitize hooks for the meta-blocking hot paths (the `sanitize`
//! feature).
//!
//! `er_model::sanitize` owns the structural validators; this module holds
//! the *streaming* checks the pipeline interleaves with its sweeps: every
//! weighted edge the weighting stage emits and every comparison the pruning
//! stage retains is checked on the fly, so a violation panics at the exact
//! stage that produced it instead of corrupting downstream results.
//!
//! Everything here is compiled only with the `sanitize` cargo feature;
//! release builds and `crates/bench` pay nothing.

use crate::context::GraphContext;
use crate::weighting::WeightingImpl;
use crate::weights::EdgeWeigher;
use er_model::{BlockCollection, ComparisonSet, EntityId, ErKind};

/// Checks one weighted edge of the implicit blocking graph: the weight is
/// finite and non-negative, the endpoints are comparable under the task
/// kind (distinct; across the two collections for Clean-Clean ER) and the
/// pair genuinely co-occurs in at least one block.
///
/// # Panics
/// On the first breached invariant, naming the edge.
pub fn check_edge(ctx: &GraphContext<'_>, a: EntityId, b: EntityId, w: f64) {
    assert!(w.is_finite() && w >= 0.0, "mb-sanitize: edge {a}-{b} carries invalid weight {w}");
    assert!(
        ctx.comparable(a, b),
        "mb-sanitize: edge {a}-{b} is not comparable under {:?}",
        ctx.kind()
    );
    assert!(
        ctx.index().common_blocks(a, b) > 0,
        "mb-sanitize: edge {a}-{b} has no common block — not a blocking-graph edge"
    );
}

/// Checks one node-centric neighborhood emission: ids and weights line up,
/// the pivot is not its own neighbor, and every incident edge passes
/// [`check_edge`].
pub fn check_neighborhood(ctx: &GraphContext<'_>, pivot: EntityId, ids: &[u32], weights: &[f64]) {
    assert_eq!(
        ids.len(),
        weights.len(),
        "mb-sanitize: neighborhood of {pivot}: {} ids but {} weights",
        ids.len(),
        weights.len()
    );
    for (&j, &w) in ids.iter().zip(weights) {
        assert_ne!(j, pivot.0, "mb-sanitize: {pivot} listed as its own neighbor");
        check_edge(ctx, pivot, EntityId(j), w);
    }
}

/// Post-condition of Block Filtering: the output is structurally valid,
/// keeps no comparison-free block, entails only comparisons the input
/// entailed, and respects every profile's retained-assignment limit.
pub fn check_filtered(input: &BlockCollection, output: &BlockCollection, limits: &[u32]) {
    use er_model::sanitize::{assert_valid, validate_pruned};
    assert_valid(&output.validate(), "block filtering output");
    assert_valid(&output.validate_no_empty_blocks(), "block filtering output");
    assert_valid(&validate_pruned(output, input), "block filtering output");
    let used = output.assignments_per_entity();
    for (i, (&u, &limit)) in used.iter().zip(limits).enumerate() {
        assert!(
            u <= limit,
            "mb-sanitize: block filtering retained entity {i} in {u} blocks, limit {limit}"
        );
    }
}

/// Validates the pruning input (blocks + index + LeCoBI consistency +
/// Clean-Clean split) before a pipeline run starts consuming it.
pub fn check_pipeline_input(ctx: &GraphContext<'_>) {
    use er_model::sanitize::assert_valid;
    let blocks = ctx.blocks();
    assert_valid(&blocks.validate(), "meta-blocking input blocks");
    assert_valid(&ctx.index().validate(blocks), "meta-blocking entity index");
    assert_valid(&ctx.index().validate_lecobi(blocks), "meta-blocking entity index");
    if blocks.kind() == ErKind::CleanClean {
        assert_valid(&blocks.validate_split(ctx.split()), "meta-blocking input blocks");
    }
}

/// Materializes the redefined retained-set a reciprocal scheme must be a
/// subset of (reciprocal links satisfy *both* endpoints' criteria, so every
/// reciprocal comparison is also retained under *either*).
pub fn redefined_retained_set(
    node_centric_cardinality: bool,
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
) -> ComparisonSet {
    let mut set = ComparisonSet::new();
    let sink = |a: EntityId, b: EntityId| {
        set.insert(a, b);
    };
    if node_centric_cardinality {
        crate::prune::redefined_cnp(ctx, weigher, imp, &mut mb_observe::Noop, sink);
    } else {
        crate::prune::redefined_wnp(ctx, weigher, imp, &mut mb_observe::Noop, sink);
    }
    set
}

/// Checks one retained comparison streamed out of a pruning scheme: the
/// pair must be a genuine edge of the input graph (comparable + at least
/// one common block — i.e. pruned ⊆ input), and, for the reciprocal
/// schemes, a member of the corresponding redefined retained-set.
pub fn check_retained(
    ctx: &GraphContext<'_>,
    a: EntityId,
    b: EntityId,
    redefined: Option<&ComparisonSet>,
) {
    assert!(
        ctx.comparable(a, b),
        "mb-sanitize: retained comparison {a}-{b} is not comparable under {:?}",
        ctx.kind()
    );
    assert!(
        ctx.index().common_blocks(a, b) > 0,
        "mb-sanitize: retained comparison {a}-{b} was never entailed by the input blocks"
    );
    if let Some(set) = redefined {
        assert!(
            set.contains(a, b),
            "mb-sanitize: reciprocal pruning retained {a}-{b}, \
             which the redefined variant does not retain"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use er_model::{Block, BlockCollection};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[2, 3])),
            ],
        )
    }

    #[test]
    fn clean_pipeline_passes_all_checks() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        check_pipeline_input(&ctx);
        let weigher = EdgeWeigher::new(WeightingScheme::Js, &ctx);
        // With the feature on, the dispatcher itself routes every emission
        // through check_edge — this sweep runs fully checked.
        let mut n = 0;
        crate::weighting::for_each_edge(WeightingImpl::Optimized, &ctx, &weigher, |_, _, _| n += 1);
        assert_eq!(n, 4);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn non_finite_weight_is_caught() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        check_edge(&ctx, EntityId(0), EntityId(1), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "not comparable")]
    fn self_comparison_is_caught() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        check_retained(&ctx, EntityId(1), EntityId(1), None);
    }

    #[test]
    #[should_panic(expected = "never entailed")]
    fn invented_comparison_is_caught() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        // 0 and 3 share no block: a pruning scheme must never emit them.
        check_retained(&ctx, EntityId(0), EntityId(3), None);
    }

    #[test]
    #[should_panic(expected = "redefined variant does not retain")]
    fn reciprocal_outside_redefined_is_caught() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let mut set = ComparisonSet::new();
        set.insert(EntityId(0), EntityId(1));
        // (1, 2) co-occurs, but is not in the supplied redefined set.
        check_retained(&ctx, EntityId(1), EntityId(2), Some(&set));
    }

    #[test]
    fn redefined_retained_set_covers_reciprocal() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        for node_centric_cardinality in [true, false] {
            let set = redefined_retained_set(
                node_centric_cardinality,
                &ctx,
                &weigher,
                WeightingImpl::Optimized,
            );
            let reciprocal = |sink: &mut dyn FnMut(EntityId, EntityId)| {
                if node_centric_cardinality {
                    crate::prune::reciprocal_cnp(
                        &ctx,
                        &weigher,
                        WeightingImpl::Optimized,
                        &mut mb_observe::Noop,
                        sink,
                    )
                } else {
                    crate::prune::reciprocal_wnp(
                        &ctx,
                        &weigher,
                        WeightingImpl::Optimized,
                        &mut mb_observe::Noop,
                        sink,
                    )
                }
            };
            let mut all_in = true;
            reciprocal(&mut |a, b| all_in &= set.contains(a, b));
            assert!(all_in);
        }
    }
}
