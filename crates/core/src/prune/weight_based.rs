//! Weight-based pruning: WEP, WNP and the redefined/reciprocal WNP.

use super::Combine;
use crate::context::GraphContext;
use crate::weighting::{self, WeightingImpl};
use crate::weights::EdgeWeigher;
use er_model::EntityId;
use mb_observe::{Counter, Observer, Stage, StageScope};

/// Whether a weight reaches a pruning threshold, with a one-sided relative
/// tolerance: a graph whose edges all carry the *same* weight must retain
/// them all, but sequential summation can round the mean one ulp above the
/// common value and would otherwise prune every edge. Weights are
/// non-negative for all five schemes, so a relative epsilon is safe.
#[inline]
pub(crate) fn reaches(w: f64, threshold: f64) -> bool {
    w >= threshold - threshold * 1e-9
}

/// Weighted Edge Pruning: retains every edge whose weight reaches the mean
/// edge weight of the entire blocking graph.
///
/// Shallow pruning for effectiveness-intensive applications: recall stays
/// above 0.95 on all the paper's datasets. Two edge sweeps: one to compute
/// the mean, one to emit.
///
/// Stage accounting: the mean-computation sweep reports as
/// [`Stage::EdgeWeighting`]; the emission sweep re-weighs every edge and
/// reports as [`Stage::Pruning`] (so `edges_weighed` appears in both).
pub fn wep(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
    let mut sum = 0.0f64;
    let mut count = 0u64;
    weighting::for_each_edge(imp, ctx, weigher, |_a, _b, w| {
        sum += w;
        count += 1;
    });
    scope.add(Counter::EdgesWeighed, count);
    scope.finish();
    if count == 0 {
        return;
    }
    let mean = sum / count as f64;
    #[cfg(feature = "sanitize")]
    assert!(
        mean.is_finite() && mean >= 0.0,
        "mb-sanitize: WEP mean weight {mean} over {count} edges is invalid"
    );
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let (mut edges, mut retained) = (0u64, 0u64);
    weighting::for_each_edge(imp, ctx, weigher, |a, b, w| {
        edges += 1;
        if reaches(w, mean) {
            retained += 1;
            sink(a, b);
        }
    });
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// The mean weight of one node neighborhood — WNP's local threshold.
pub(crate) fn neighborhood_mean(weights: &[f64]) -> f64 {
    weights.iter().sum::<f64>() / weights.len() as f64
}

/// Weighted Node Pruning, original semantics: for every node, retain the
/// incident edges whose weight reaches the neighborhood's mean weight, and
/// emit each retained directed edge as a comparison.
///
/// An edge above the mean in both neighborhoods is emitted twice — the
/// redundancy [`redefined_wnp`] eliminates.
///
/// Stage accounting: like [`crate::prune::cnp`], the fused neighborhood
/// sweep reports as a single [`Stage::Pruning`] pass whose weighting work
/// shows in `neighborhoods_scanned` / `edges_weighed` (directed visits, so
/// each edge counts twice).
pub fn wnp(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let (mut hoods, mut edges, mut retained) = (0u64, 0u64, 0u64);
    weighting::for_each_neighborhood(imp, ctx, weigher, |pivot, ids, weights| {
        hoods += 1;
        edges += ids.len() as u64;
        let mean = neighborhood_mean(weights);
        for (&j, &w) in ids.iter().zip(weights) {
            if reaches(w, mean) {
                retained += 1;
                sink(pivot, EntityId(j));
            }
        }
    });
    scope.add(Counter::NeighborhoodsScanned, hoods);
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Phase 1 shared by [`redefined_wnp`] and [`reciprocal_wnp`]: every node's
/// local weight threshold (Algorithm 5, lines 2–4), plus the sweep's
/// (neighborhoods, directed edges) tally.
///
/// Nodes with no neighborhood get `+∞` so they can never retain an edge —
/// they have none to retain.
fn per_node_thresholds(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
) -> (Vec<f64>, u64, u64) {
    let mut thresholds = vec![f64::INFINITY; ctx.num_entities()];
    let (mut hoods, mut edges) = (0u64, 0u64);
    weighting::for_each_neighborhood(imp, ctx, weigher, |pivot, ids, weights| {
        hoods += 1;
        edges += ids.len() as u64;
        thresholds[pivot.idx()] = neighborhood_mean(weights);
    });
    (thresholds, hoods, edges)
}

fn two_phase_wnp(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    combine: Combine,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    // Phase 1 (threshold computation) is the weighting work of Algorithm 5;
    // phase 2 is the pruning sweep over the distinct edges.
    let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
    let (thresholds, hoods, directed_edges) = per_node_thresholds(ctx, weigher, imp);
    scope.add(Counter::NeighborhoodsScanned, hoods);
    scope.add(Counter::EdgesWeighed, directed_edges);
    scope.finish();
    // A NaN threshold would silently drop every incident edge.
    #[cfg(feature = "sanitize")]
    for (i, &t) in thresholds.iter().enumerate() {
        assert!(!t.is_nan(), "mb-sanitize: WNP threshold of entity {i} is NaN");
    }
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let (mut edges, mut retained) = (0u64, 0u64);
    weighting::for_each_edge(imp, ctx, weigher, |a, b, w| {
        edges += 1;
        let over_a = reaches(w, thresholds[a.idx()]);
        let over_b = reaches(w, thresholds[b.idx()]);
        let retain = match combine {
            Combine::Either => over_a || over_b,
            Combine::Both => over_a && over_b,
        };
        if retain {
            retained += 1;
            sink(a, b);
        }
    });
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Redefined Weighted Node Pruning (Algorithm 5): WNP without redundant
/// comparisons — an edge is retained at most once, if it reaches the local
/// threshold of *either* endpoint.
pub fn redefined_wnp(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    obs: &mut dyn Observer,
    sink: impl FnMut(EntityId, EntityId),
) {
    two_phase_wnp(ctx, weigher, imp, Combine::Either, obs, sink);
}

/// Reciprocal Weighted Node Pruning (§5.2): retains only the edges that
/// reach the local thresholds of *both* endpoints.
///
/// The paper's best scheme for effectiveness-intensive applications:
/// precision ~3.9× that of WNP with recall still above 0.95 in most
/// configurations.
pub fn reciprocal_wnp(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    obs: &mut dyn Observer,
    sink: impl FnMut(EntityId, EntityId),
) {
    two_phase_wnp(ctx, weigher, imp, Combine::Both, obs, sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use er_model::{Block, BlockCollection, ErKind};
    use mb_observe::Noop;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    /// (0,1) strong (2 shared blocks), (1,2) & (2,3) weak (1 each).
    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[2, 3])),
            ],
        )
    }

    fn collect(f: impl FnOnce(&mut Noop, &mut dyn FnMut(EntityId, EntityId))) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut sink = |a: EntityId, b: EntityId| out.push((a.0, b.0));
        f(&mut Noop, &mut sink);
        out
    }

    #[test]
    fn wep_retains_edges_at_or_above_mean() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        // Edges: (0,1)=2, (0,2)=1, (1,2)=1, (2,3)=1 -> mean 1.25.
        let got = collect(|o, s| wep(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        assert_eq!(got, vec![(0, 1)]);
    }

    #[test]
    fn wep_on_empty_graph() {
        let blocks = BlockCollection::new(ErKind::Dirty, 3, vec![]);
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Js, &ctx);
        assert!(collect(|o, s| wep(&ctx, &weigher, WeightingImpl::Optimized, o, s)).is_empty());
    }

    #[test]
    fn wep_uniform_weights_keep_everything() {
        // All weights equal -> every edge reaches the mean.
        let blocks = BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![Block::dirty(ids(&[0, 1])), Block::dirty(ids(&[2, 3]))],
        );
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let got = collect(|o, s| wep(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn wep_reports_both_stages() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let mut log = mb_observe::RingLog::new(16);
        wep(&ctx, &weigher, WeightingImpl::Optimized, &mut log, |_, _| {});
        assert_eq!(log.exit_order(), vec![Stage::EdgeWeighting, Stage::Pruning]);
        // 4 edges weighed per sweep, two sweeps.
        assert_eq!(log.counter_total(Counter::EdgesWeighed), 8);
        assert_eq!(log.counter_total(Counter::RetainedComparisons), 1);
    }

    #[test]
    fn wnp_emits_directed_edges() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let got = collect(|o, s| wnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        // Node 0: weights {1:2, 2:1}, mean 1.5 -> keeps 1. Node 1: same ->
        // keeps 0. Node 2: {0:1,1:1,3:1}, mean 1 -> keeps all three. Node 3:
        // {2:1} -> keeps 2.
        assert_eq!(got.len(), 2 + 3 + 1);
        assert!(got.contains(&(0, 1)) && got.contains(&(1, 0)));
    }

    #[test]
    fn redefined_wnp_dedupes_and_preserves_pairs() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let original = collect(|o, s| wnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        let redefined =
            collect(|o, s| redefined_wnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        let mut orig: Vec<(u32, u32)> =
            original.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        orig.sort_unstable();
        orig.dedup();
        let mut redef = redefined;
        redef.sort_unstable();
        assert_eq!(orig, redef);
    }

    #[test]
    fn reciprocal_wnp_requires_both_thresholds() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let got = collect(|o, s| reciprocal_wnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        // (0,1): above both means. (2,3): above 3's mean (1) and equal to
        // 2's mean (1) -> retained. (0,2)/(1,2): below 0/1's mean 1.5.
        let mut got = got;
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn reciprocal_subset_of_redefined() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        for scheme in WeightingScheme::ALL {
            let weigher = EdgeWeigher::new(scheme, &ctx);
            let redefined =
                collect(|o, s| redefined_wnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
            let reciprocal =
                collect(|o, s| reciprocal_wnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
            for p in &reciprocal {
                assert!(redefined.contains(p), "{}: {p:?}", scheme.name());
            }
        }
    }
}
