//! Cardinality-based pruning: CEP, CNP and the redefined/reciprocal CNP.

use super::Combine;
use crate::context::GraphContext;
use crate::weighting::{self, WeightingImpl};
use crate::weights::EdgeWeigher;
use er_model::EntityId;
use mb_observe::{Counter, Observer, Stage, StageScope};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A weighted edge with a total order: by weight, then by ids — which makes
/// every top-`K` selection deterministic even under weight ties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct WeightedEdge {
    pub(crate) w: f64,
    pub(crate) a: u32,
    pub(crate) b: u32,
}

impl Eq for WeightedEdge {}

impl Ord for WeightedEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.w
            .total_cmp(&other.w)
            .then_with(|| self.a.cmp(&other.a))
            .then_with(|| self.b.cmp(&other.b))
    }
}

impl PartialOrd for WeightedEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The global cardinality threshold of CEP: `K = ⌊Σ_{b∈B} |b| / 2⌋`.
pub fn cep_threshold(ctx: &GraphContext<'_>) -> usize {
    (ctx.blocks().total_assignments() / 2) as usize
}

/// Cap on a top-`K` heap's up-front reservation. `K` is derived from the
/// total block assignments, so on large collections it can demand hundreds
/// of MB before a single edge arrives — and when the graph holds fewer than
/// `K` edges most of that memory would never be touched. Reserve a bounded
/// prefix and let the heap grow on demand (amortized, and only as far as
/// the edges actually seen).
pub(crate) const MAX_HEAP_PREALLOC: usize = 1 << 16;

/// The initial capacity for a top-`K` min-heap: `K + 1` when small, capped
/// by [`MAX_HEAP_PREALLOC`].
pub(crate) fn heap_prealloc(k: usize) -> usize {
    (k + 1).min(MAX_HEAP_PREALLOC)
}

/// Offers `edge` to a bounded min-heap keeping the `k` largest edges under
/// the [`WeightedEdge`] total order.
#[inline]
pub(crate) fn push_top_k(
    heap: &mut BinaryHeap<Reverse<WeightedEdge>>,
    edge: WeightedEdge,
    k: usize,
) {
    if heap.len() < k {
        heap.push(Reverse(edge));
    } else if heap.peek().is_some_and(|Reverse(min)| *min < edge) {
        heap.pop();
        heap.push(Reverse(edge));
    }
}

/// Cardinality Edge Pruning: retains the top-`K` weighted edges of the
/// entire blocking graph, `K = ⌊Σ|b|/2⌋`.
///
/// Deep pruning for efficiency-intensive applications: high precision,
/// recall bounded by `K`. Retained comparisons are emitted in descending
/// weight order.
///
/// Stage accounting: the single weighting sweep that feeds the top-`K` heap
/// reports as [`Stage::EdgeWeighting`]; the sorted emission reports as
/// [`Stage::Pruning`].
pub fn cep(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let k = cep_threshold(ctx);
    if k == 0 {
        return;
    }
    let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
    // Min-heap of the K best edges seen so far.
    let mut heap: BinaryHeap<Reverse<WeightedEdge>> = BinaryHeap::with_capacity(heap_prealloc(k));
    let mut edges = 0u64;
    weighting::for_each_edge(imp, ctx, weigher, |a, b, w| {
        edges += 1;
        push_top_k(&mut heap, WeightedEdge { w, a: a.0, b: b.0 }, k);
    });
    scope.add(Counter::EdgesWeighed, edges);
    scope.finish();
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let mut retained: Vec<WeightedEdge> = heap.into_iter().map(|Reverse(e)| e).collect();
    retained.sort_unstable_by(|x, y| y.cmp(x));
    #[cfg(feature = "sanitize")]
    {
        assert!(
            retained.len() <= k,
            "mb-sanitize: CEP retained {} comparisons, K = {k}",
            retained.len()
        );
        assert!(
            retained.windows(2).all(|w| w[0] >= w[1]),
            "mb-sanitize: CEP emission order is not descending by weight"
        );
    }
    scope.add(Counter::RetainedComparisons, retained.len() as u64);
    for e in retained {
        sink(EntityId(e.a), EntityId(e.b));
    }
    scope.finish();
}

/// The per-node cardinality threshold of CNP:
/// `k = max(1, ⌊Σ_{b∈B} |b| / |E|⌋ − 1)` — one less than the average number
/// of blocks per profile.
pub fn cnp_threshold(ctx: &GraphContext<'_>) -> usize {
    let n = ctx.num_entities().max(1) as u64;
    let bpe = ctx.blocks().total_assignments() / n;
    (bpe.saturating_sub(1)).max(1) as usize
}

/// Selects the top-`k` neighbors of one neighborhood, deterministically.
/// Returns them sorted by neighbor id (for the binary-search membership
/// tests of the two-phase variants).
pub(crate) fn top_k_neighbors(pivot: EntityId, ids: &[u32], weights: &[f64], k: usize) -> Vec<u32> {
    let mut edges: Vec<WeightedEdge> = ids
        .iter()
        .zip(weights)
        .map(|(&j, &w)| WeightedEdge { w, a: pivot.0.min(j), b: pivot.0.max(j) })
        .collect();
    edges.sort_unstable_by(|x, y| y.cmp(x));
    edges.truncate(k);
    let mut kept: Vec<u32> = edges.iter().map(|e| if e.a == pivot.0 { e.b } else { e.a }).collect();
    kept.sort_unstable();
    kept
}

/// Cardinality Node Pruning, original semantics: for every node, retain the
/// top-`k` weighted edges of its neighborhood and emit each as a comparison.
///
/// An edge retained by both endpoints is emitted twice — the redundancy the
/// redefined variant eliminates. Robust recall (every node keeps its best
/// matches) at the cost of roughly double the comparisons of CEP.
///
/// Stage accounting: the original scheme fuses weighting and selection into
/// one neighborhood sweep, so the whole pass reports as [`Stage::Pruning`]
/// (its weighting work shows up in the `neighborhoods_scanned` and
/// `edges_weighed` counters; the directed sweep visits each edge twice).
pub fn cnp(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let k = cnp_threshold(ctx);
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let (mut hoods, mut edges, mut retained) = (0u64, 0u64, 0u64);
    weighting::for_each_neighborhood(imp, ctx, weigher, |pivot, ids, weights| {
        hoods += 1;
        edges += ids.len() as u64;
        for j in top_k_neighbors(pivot, ids, weights, k) {
            retained += 1;
            sink(pivot, EntityId(j));
        }
    });
    scope.add(Counter::NeighborhoodsScanned, hoods);
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Phase 1 shared by [`redefined_cnp`] and [`reciprocal_cnp`]: the sorted
/// top-`k` neighbor list of every node ("Sorted Stacks" in Algorithm 4),
/// plus the sweep's (neighborhoods, directed edges) tally.
fn per_node_top_k(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    k: usize,
) -> (Vec<Vec<u32>>, u64, u64) {
    let mut stacks: Vec<Vec<u32>> = vec![Vec::new(); ctx.num_entities()];
    let (mut hoods, mut edges) = (0u64, 0u64);
    weighting::for_each_neighborhood(imp, ctx, weigher, |pivot, ids, weights| {
        hoods += 1;
        edges += ids.len() as u64;
        stacks[pivot.idx()] = top_k_neighbors(pivot, ids, weights, k);
    });
    (stacks, hoods, edges)
}

fn two_phase_cnp(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    combine: Combine,
    obs: &mut dyn Observer,
    mut sink: impl FnMut(EntityId, EntityId),
) {
    let k = cnp_threshold(ctx);
    // Phase 1 is the weighting work of Algorithm 4 (building every node's
    // sorted stack); phase 2 is the pruning sweep over the distinct edges.
    let mut scope = StageScope::enter(obs, Stage::EdgeWeighting);
    let (stacks, hoods, directed_edges) = per_node_top_k(ctx, weigher, imp, k);
    scope.add(Counter::NeighborhoodsScanned, hoods);
    scope.add(Counter::EdgesWeighed, directed_edges);
    scope.finish();
    // The binary searches below require sorted stacks within the per-node
    // budget — phase 1's contract.
    #[cfg(feature = "sanitize")]
    for (i, s) in stacks.iter().enumerate() {
        assert!(
            s.len() <= k,
            "mb-sanitize: top-k stack of entity {i} holds {} neighbors, k = {k}",
            s.len()
        );
        assert!(
            s.windows(2).all(|w| w[0] < w[1]),
            "mb-sanitize: top-k stack of entity {i} is not strictly ascending"
        );
    }
    // Phase 2 (edge-centric): every distinct edge is retained at most once.
    let mut scope = StageScope::enter(obs, Stage::Pruning);
    let (mut edges, mut retained) = (0u64, 0u64);
    weighting::for_each_edge(imp, ctx, weigher, |a, b, _w| {
        edges += 1;
        let in_a = stacks[a.idx()].binary_search(&b.0).is_ok();
        let in_b = stacks[b.idx()].binary_search(&a.0).is_ok();
        let retain = match combine {
            Combine::Either => in_a || in_b,
            Combine::Both => in_a && in_b,
        };
        if retain {
            retained += 1;
            sink(a, b);
        }
    });
    scope.add(Counter::EdgesWeighed, edges);
    scope.add(Counter::RetainedComparisons, retained);
    scope.finish();
}

/// Redefined Cardinality Node Pruning (Algorithm 4): CNP without redundant
/// comparisons.
///
/// Phase 1 computes every node's top-`k` stack; phase 2 iterates the
/// distinct edges and retains those in the stack of *either* endpoint. Same
/// recall as [`cnp`], ~18% fewer comparisons on the paper's datasets.
pub fn redefined_cnp(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    obs: &mut dyn Observer,
    sink: impl FnMut(EntityId, EntityId),
) {
    two_phase_cnp(ctx, weigher, imp, Combine::Either, obs, sink);
}

/// Reciprocal Cardinality Node Pruning (§5.2): retains only the edges in the
/// top-`k` stacks of *both* endpoints — reciprocal links are "strong
/// indications for profile pairs with high chances of matching".
///
/// The paper's best scheme for efficiency-intensive applications: precision
/// up to an order of magnitude above CNP at a small recall cost.
pub fn reciprocal_cnp(
    ctx: &GraphContext<'_>,
    weigher: &EdgeWeigher<'_, '_>,
    imp: WeightingImpl,
    obs: &mut dyn Observer,
    sink: impl FnMut(EntityId, EntityId),
) {
    two_phase_cnp(ctx, weigher, imp, Combine::Both, obs, sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightingScheme;
    use er_model::{Block, BlockCollection, ErKind};
    use mb_observe::Noop;

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    /// Graph: (0,1) share 2 blocks, the rest share 1 each.
    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[2, 3])),
            ],
        )
    }

    fn collect(f: impl FnOnce(&mut Noop, &mut dyn FnMut(EntityId, EntityId))) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut sink = |a: EntityId, b: EntityId| out.push((a.0, b.0));
        f(&mut Noop, &mut sink);
        out
    }

    #[test]
    fn cep_retains_global_top_k() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        // Σ|b| = 7 -> K = 3.
        assert_eq!(cep_threshold(&ctx), 3);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let got = collect(|o, s| cep(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        assert_eq!(got.len(), 3);
        // (0,1) has CBS 2, the strongest edge, and comes first.
        assert_eq!(got[0], (0, 1));
    }

    #[test]
    fn cep_emits_nothing_on_empty_graph() {
        let blocks = BlockCollection::new(ErKind::Dirty, 2, vec![]);
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let got = collect(|o, s| cep(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        assert!(got.is_empty());
    }

    #[test]
    fn cep_reports_weighting_and_pruning_stages() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let mut log = mb_observe::RingLog::new(16);
        cep(&ctx, &weigher, WeightingImpl::Optimized, &mut log, |_, _| {});
        assert_eq!(log.exit_order(), vec![Stage::EdgeWeighting, Stage::Pruning]);
        // 4 distinct edges weighed, K = 3 retained.
        assert_eq!(log.counter_total(Counter::EdgesWeighed), 4);
        assert_eq!(log.counter_total(Counter::RetainedComparisons), 3);
    }

    #[test]
    fn cnp_emits_directed_duplicates() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        // Σ|b|/|E| = 7/4 = 1 -> k = max(1, 0) = 1.
        assert_eq!(cnp_threshold(&ctx), 1);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let got = collect(|o, s| cnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        // Every node keeps its best edge: 0->1, 1->0, 2->3 (CBS ties (2,0)
        // vs (2,3) broken towards smaller pair ids -> (0,2)), 3->2.
        assert_eq!(got.len(), 4);
        // Both directions of the strongest pair are present -> redundancy.
        assert!(got.contains(&(0, 1)) && got.contains(&(1, 0)));
    }

    #[test]
    fn redefined_cnp_same_pairs_no_duplicates() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let original = collect(|o, s| cnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        let redefined =
            collect(|o, s| redefined_cnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        // Canonicalize the original's directed output.
        let mut orig_pairs: Vec<(u32, u32)> =
            original.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        orig_pairs.sort_unstable();
        orig_pairs.dedup();
        let mut redef = redefined;
        redef.sort_unstable();
        assert_eq!(orig_pairs, redef);
        // No pair occurs twice.
        let mut dedup = redef.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), redef.len());
    }

    #[test]
    fn reciprocal_cnp_is_subset_of_redefined() {
        let blocks = fixture();
        let ctx = GraphContext::new_dirty(&blocks);
        let weigher = EdgeWeigher::new(WeightingScheme::Cbs, &ctx);
        let redefined =
            collect(|o, s| redefined_cnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        let reciprocal =
            collect(|o, s| reciprocal_cnp(&ctx, &weigher, WeightingImpl::Optimized, o, s));
        assert!(reciprocal.len() <= redefined.len());
        for p in &reciprocal {
            assert!(redefined.contains(p));
        }
        // (0,1) is in both endpoints' top-1 -> survives reciprocal pruning.
        assert!(reciprocal.contains(&(0, 1)));
    }

    #[test]
    fn top_k_selection_is_deterministic_under_ties() {
        let ids_ = [5u32, 3, 9];
        let ws = [1.0, 1.0, 1.0];
        let a = top_k_neighbors(EntityId(1), &ids_, &ws, 2);
        let b = top_k_neighbors(EntityId(1), &ids_, &ws, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Ties break towards larger pair ids first (total order), so the
        // selection is stable regardless of input order.
        let shuffled = top_k_neighbors(EntityId(1), &[9, 5, 3], &[1.0, 1.0, 1.0], 2);
        assert_eq!(a, shuffled);
    }
}
