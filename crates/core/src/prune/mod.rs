//! Pruning algorithms: which edges of the weighted blocking graph survive.
//!
//! Terminology (§3): a *pruning scheme* couples an algorithm (edge- or
//! node-centric) with a criterion (weight or cardinality threshold). The
//! four original schemes come from the TKDE'14 meta-blocking framework:
//!
//! | scheme | algorithm | criterion |
//! |--------|-----------|-----------|
//! | [`cep`] | edge-centric | global top-`K`, `K = ⌊Σ|b|/2⌋` |
//! | [`cnp`] | node-centric | per-node top-`k`, `k = ⌊Σ|b|/|E|⌋ − 1` |
//! | [`wep`] | edge-centric | global mean weight |
//! | [`wnp`] | node-centric | per-neighborhood mean weight |
//!
//! The original node-centric schemes emit *directed* retained edges — an
//! edge kept by both endpoints yields two comparisons. The paper's §5
//! contributions fix exactly that:
//!
//! * [`redefined_cnp`] / [`redefined_wnp`] (Algorithms 4/5): retain each
//!   edge at most once, if it satisfies *either* endpoint's criterion;
//! * [`reciprocal_cnp`] / [`reciprocal_wnp`]: retain only edges satisfying
//!   *both* endpoints' criteria (reciprocal links).
//!
//! All functions stream retained comparisons to a sink; nothing is
//! materialized beyond the per-node criteria.

mod cardinality;
mod weight_based;

pub use cardinality::{cep, cep_threshold, cnp, cnp_threshold, reciprocal_cnp, redefined_cnp};
pub(crate) use cardinality::{heap_prealloc, push_top_k, top_k_neighbors, WeightedEdge};
pub(crate) use weight_based::{neighborhood_mean, reaches};
pub use weight_based::{reciprocal_wnp, redefined_wnp, wep, wnp};

/// How a two-phase node-centric scheme combines its endpoints' criteria
/// (Algorithms 4/5 use `Either`; the reciprocal variants use `Both`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Combine {
    /// Retain if the criterion holds for at least one endpoint (OR).
    Either,
    /// Retain only if the criterion holds for both endpoints (AND).
    Both,
}
