//! Incremental Meta-blocking — the extension the paper's conclusion plans
//! ("In the future, we plan to adapt our techniques for Enhanced
//! Meta-blocking to Incremental Entity Resolution").
//!
//! The batch pipeline assumes the whole entity collection is available up
//! front. Incremental ER (pay-as-you-go resolution, entity-centric search
//! [25, 26] in the paper's citations) instead receives profiles one at a
//! time and must answer, *per arrival*: which existing profiles is the new
//! one worth comparing with?
//!
//! [`IncrementalMetaBlocking`] adapts the paper's machinery to that regime:
//!
//! * **incremental Token Blocking** — the token → block index grows as
//!   profiles arrive;
//! * **incremental Block Purging** — blocks beyond a size cap stop
//!   contributing candidates (they are the oversized blocks batch purging
//!   would drop);
//! * **per-arrival node-centric pruning** — the new profile's neighborhood
//!   is weighted with a [`WeightingScheme`] and only its top-`k` neighbors
//!   are emitted, the CNP criterion applied to one node at a time.
//!
//! Because each pair is reported when its *second* member arrives, the
//! stream of emitted comparisons is duplicate-free by construction — the
//! incremental analog of Redefined pruning. EJS is not supported: it needs
//! global node degrees, which are unstable while the collection grows.

use crate::weights::WeightingScheme;
use er_model::fxhash::FxHashMap;
use er_model::tokenize::{tokens, Interner};
use er_model::{EntityId, EntityProfile};

/// Configuration of the incremental pipeline.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalConfig {
    /// Weighting scheme for the per-arrival neighborhood (EJS unsupported).
    pub scheme: WeightingScheme,
    /// Per-arrival cardinality threshold: at most `k` comparisons are
    /// emitted per new profile (the CNP criterion, one node at a time).
    pub k: usize,
    /// Blocks larger than this stop contributing candidate neighbors —
    /// incremental Block Purging. `usize::MAX` disables it.
    pub max_block_size: usize,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig { scheme: WeightingScheme::Js, k: 5, max_block_size: 1_000 }
    }
}

/// Streaming meta-blocking over a growing Dirty collection.
///
/// ```
/// use er_model::EntityProfile;
/// use mb_core::incremental::{IncrementalConfig, IncrementalMetaBlocking};
///
/// let mut inc = IncrementalMetaBlocking::new(IncrementalConfig::default());
/// let first = inc.add(&EntityProfile::new("a").with("name", "jack miller"));
/// assert!(first.is_empty()); // nothing to compare against yet
/// let second = inc.add(&EntityProfile::new("b").with("fullname", "jack l miller"));
/// assert_eq!(second.len(), 1); // the new profile is matched up immediately
/// ```
#[derive(Debug)]
pub struct IncrementalMetaBlocking {
    config: IncrementalConfig,
    interner: Interner,
    /// Per token id: the entities carrying it (ascending arrival order).
    blocks: Vec<Vec<EntityId>>,
    /// Per entity: its token ids (= block list, ascending).
    entity_blocks: Vec<Vec<u32>>,
    /// Scratch: accumulated per-candidate score for the current arrival.
    scratch: FxHashMap<u32, f64>,
}

impl IncrementalMetaBlocking {
    /// Creates an empty incremental pipeline.
    pub fn new(config: IncrementalConfig) -> Self {
        assert!(
            config.scheme != WeightingScheme::Ejs,
            "EJS needs global degrees and is not supported incrementally"
        );
        assert!(config.k > 0, "k must be positive");
        IncrementalMetaBlocking {
            config,
            interner: Interner::new(),
            blocks: Vec::new(),
            entity_blocks: Vec::new(),
            scratch: FxHashMap::default(),
        }
    }

    /// Number of profiles ingested so far.
    pub fn len(&self) -> usize {
        self.entity_blocks.len()
    }

    /// Whether no profile has been ingested.
    pub fn is_empty(&self) -> bool {
        self.entity_blocks.is_empty()
    }

    /// Ingests one profile and returns the comparisons worth executing for
    /// it: its top-`k` weighted co-occurring profiles among all earlier
    /// arrivals. The returned pairs are `(existing, new)` with the new
    /// profile always second; across calls no pair is ever repeated.
    pub fn add(&mut self, profile: &EntityProfile) -> Vec<(EntityId, EntityId)> {
        let id = EntityId::from_index(self.entity_blocks.len());

        // Tokenize and dedup the new profile's blocking keys.
        let mut keys: Vec<u32> = Vec::new();
        for value in profile.values() {
            for t in tokens(value) {
                keys.push(self.interner.intern(&t));
            }
        }
        keys.sort_unstable();
        keys.dedup();

        // Scan the existing members of each key's block (before insertion),
        // honoring the size cap.
        self.scratch.clear();
        for &key in &keys {
            if let Some(block) = self.blocks.get(key as usize) {
                if block.len() >= self.config.max_block_size {
                    continue;
                }
                let increment = match self.config.scheme {
                    // For ARCS the batch weight divides by ‖b‖; the stream
                    // analog uses the block's current cardinality.
                    WeightingScheme::Arcs => {
                        let n = (block.len() + 1) as f64; // incl. the newcomer
                        1.0 / (n * (n - 1.0) / 2.0)
                    }
                    _ => 1.0,
                };
                for &other in block {
                    *self.scratch.entry(other.0).or_insert(0.0) += increment;
                }
            }
        }

        // Weight the candidates.
        let total_blocks = self.blocks.len().max(1) as f64;
        let bi = keys.len() as f64;
        let mut scored: Vec<(f64, u32)> = self
            .scratch
            .iter()
            .map(|(&other, &score)| {
                let bj = self.entity_blocks[other as usize].len() as f64;
                let w = match self.config.scheme {
                    WeightingScheme::Arcs | WeightingScheme::Cbs => score,
                    WeightingScheme::Ecbs => {
                        score
                            * (total_blocks / bi.max(1.0)).ln()
                            * (total_blocks / bj.max(1.0)).ln()
                    }
                    WeightingScheme::Js => score / (bi + bj - score),
                    WeightingScheme::Ejs => unreachable!("rejected at construction"),
                };
                (w, other)
            })
            .collect();

        // Top-k, deterministic under ties (higher weight first, then lower
        // id).
        scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        scored.truncate(self.config.k);
        let result: Vec<(EntityId, EntityId)> =
            scored.into_iter().map(|(_, other)| (EntityId(other), id)).collect();

        // Register the newcomer.
        for &key in &keys {
            if key as usize == self.blocks.len() {
                self.blocks.push(Vec::new());
            }
            self.blocks[key as usize].push(id);
        }
        self.entity_blocks.push(keys);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(uri: &str, text: &str) -> EntityProfile {
        EntityProfile::new(uri).with("v", text)
    }

    #[test]
    fn empty_stream_then_pairing() {
        let mut inc = IncrementalMetaBlocking::new(IncrementalConfig::default());
        assert!(inc.is_empty());
        assert!(inc.add(&profile("a", "jack miller")).is_empty());
        let got = inc.add(&profile("b", "jack lloyd miller"));
        assert_eq!(got, vec![(EntityId(0), EntityId(1))]);
        assert_eq!(inc.len(), 2);
    }

    #[test]
    fn pairs_are_never_repeated() {
        let mut inc = IncrementalMetaBlocking::new(IncrementalConfig::default());
        let texts = ["alpha beta", "alpha beta gamma", "beta gamma", "alpha gamma"];
        let mut seen = std::collections::HashSet::new();
        for (i, t) in texts.iter().enumerate() {
            for (a, b) in inc.add(&profile(&format!("p{i}"), t)) {
                assert!(b.idx() == i);
                assert!(a < b);
                assert!(seen.insert((a, b)), "pair {a}-{b} repeated");
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn k_bounds_the_emissions() {
        let config = IncrementalConfig { k: 2, ..Default::default() };
        let mut inc = IncrementalMetaBlocking::new(config);
        for i in 0..10 {
            inc.add(&profile(&format!("p{i}"), "common token here"));
        }
        let got = inc.add(&profile("new", "common token here"));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn strongest_co_occurrence_wins() {
        let config = IncrementalConfig { k: 1, scheme: WeightingScheme::Cbs, ..Default::default() };
        let mut inc = IncrementalMetaBlocking::new(config);
        inc.add(&profile("a", "one shared")); // shares 1 token with the probe
        inc.add(&profile("b", "two shared tokens")); // shares 2
        let got = inc.add(&profile("probe", "two shared tokens plus"));
        assert_eq!(got, vec![(EntityId(1), EntityId(2))]);
    }

    #[test]
    fn oversized_blocks_stop_contributing() {
        let config = IncrementalConfig { max_block_size: 3, ..Default::default() };
        let mut inc = IncrementalMetaBlocking::new(config);
        for i in 0..5 {
            inc.add(&profile(&format!("p{i}"), "stopword"));
        }
        // The "stopword" block is saturated: a newcomer sharing only it gets
        // no candidates.
        let got = inc.add(&profile("new", "stopword"));
        assert!(got.is_empty());
    }

    #[test]
    fn js_discounts_prolific_profiles() {
        let config = IncrementalConfig { k: 1, scheme: WeightingScheme::Js, ..Default::default() };
        let mut inc = IncrementalMetaBlocking::new(config);
        // Profile 0 is huge (many tokens), profile 1 is compact.
        inc.add(&profile("big", "x1 x2 x3 x4 x5 x6 x7 x8 shared other"));
        inc.add(&profile("small", "shared other"));
        // Probe shares {shared, other} with both; JS prefers the compact one.
        let got = inc.add(&profile("probe", "shared other"));
        assert_eq!(got, vec![(EntityId(1), EntityId(2))]);
    }

    #[test]
    #[should_panic(expected = "EJS")]
    fn ejs_is_rejected() {
        IncrementalMetaBlocking::new(IncrementalConfig {
            scheme: WeightingScheme::Ejs,
            ..Default::default()
        });
    }

    #[test]
    fn profiles_without_tokens_are_inert() {
        let mut inc = IncrementalMetaBlocking::new(IncrementalConfig::default());
        assert!(inc.add(&EntityProfile::new("empty")).is_empty());
        inc.add(&profile("a", "jack"));
        let got = inc.add(&profile("b", "jack"));
        assert_eq!(got.len(), 1);
        assert_eq!(inc.len(), 3);
    }
}
