//! Progressive Meta-blocking — pay-as-you-go comparison scheduling.
//!
//! The paper motivates efficiency-intensive applications with Pay-as-you-go
//! ER [26] and entity-centric search [25]: resolution may be cut off at any
//! moment, so the comparisons executed *first* should be the likeliest
//! matches. Cardinality-based pruning (CEP) already ranks edges globally —
//! this module exposes that ranking as a schedule instead of a cutoff:
//! all edges of the (optionally Block-Filtered) blocking graph, emitted in
//! descending weight order.
//!
//! The schedule dominates random comparison order by construction: the
//! progressive-recall test in `tests/` checks the area-under-the-curve
//! advantage on generated data.

use crate::context::GraphContext;
use crate::weighting::optimized;
use crate::weights::{EdgeWeigher, WeightingScheme};
use er_model::{BlockCollection, EntityId};

/// A descending-weight comparison schedule.
#[derive(Debug)]
pub struct ProgressiveSchedule {
    /// Retained comparisons, best first.
    edges: Vec<(EntityId, EntityId, f64)>,
}

impl ProgressiveSchedule {
    /// Builds the schedule for a block collection under a weighting scheme.
    ///
    /// Materializes the edge list (`O(|E_B|)` memory): a schedule that can
    /// be cut off anywhere is inherently a ranking, and the blocking graphs
    /// that survive Block Filtering fit comfortably (the paper's largest,
    /// D3D, has ~2·10¹⁰ *unfiltered* edges but the use case is
    /// budget-bounded resolution, where the caller bounds the prefix via
    /// [`ProgressiveSchedule::with_budget`]).
    pub fn build(blocks: &BlockCollection, split: usize, scheme: WeightingScheme) -> Self {
        let ctx = GraphContext::new(blocks, split);
        let weigher = EdgeWeigher::new(scheme, &ctx);
        let mut edges = Vec::new();
        optimized::for_each_edge(&ctx, &weigher, |a, b, w| edges.push((a, b, w)));
        edges
            .sort_unstable_by(|x, y| y.2.total_cmp(&x.2).then_with(|| (x.0, x.1).cmp(&(y.0, y.1))));
        ProgressiveSchedule { edges }
    }

    /// Builds the schedule but keeps only the best `budget` comparisons,
    /// with `O(budget)` memory via a bounded heap.
    pub fn with_budget(
        blocks: &BlockCollection,
        split: usize,
        scheme: WeightingScheme,
        budget: usize,
    ) -> Self {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct E(f64, u32, u32);
        impl Eq for E {}
        impl Ord for E {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0).then_with(|| (other.1, other.2).cmp(&(self.1, self.2)))
            }
        }
        impl PartialOrd for E {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let ctx = GraphContext::new(blocks, split);
        let weigher = EdgeWeigher::new(scheme, &ctx);
        let mut heap: BinaryHeap<Reverse<E>> = BinaryHeap::with_capacity(budget + 1);
        optimized::for_each_edge(&ctx, &weigher, |a, b, w| {
            if budget == 0 {
                return;
            }
            let e = E(w, a.0, b.0);
            if heap.len() < budget {
                heap.push(Reverse(e));
            } else if heap.peek().is_some_and(|Reverse(min)| *min < e) {
                heap.pop();
                heap.push(Reverse(e));
            }
        });
        let mut edges: Vec<(EntityId, EntityId, f64)> =
            heap.into_iter().map(|Reverse(E(w, a, b))| (EntityId(a), EntityId(b), w)).collect();
        edges
            .sort_unstable_by(|x, y| y.2.total_cmp(&x.2).then_with(|| (x.0, x.1).cmp(&(y.0, y.1))));
        ProgressiveSchedule { edges }
    }

    /// Number of scheduled comparisons.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterator over `(a, b, weight)`, best first.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, EntityId, f64)> + '_ {
        self.edges.iter().copied()
    }

    /// The first `n` comparisons (or all, if fewer).
    pub fn prefix(&self, n: usize) -> &[(EntityId, EntityId, f64)] {
        &self.edges[..n.min(self.edges.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Block, ErKind};

    fn ids(v: &[u32]) -> Vec<EntityId> {
        v.iter().copied().map(EntityId).collect()
    }

    fn fixture() -> BlockCollection {
        BlockCollection::new(
            ErKind::Dirty,
            4,
            vec![
                Block::dirty(ids(&[0, 1])),
                Block::dirty(ids(&[0, 1, 2])),
                Block::dirty(ids(&[2, 3])),
            ],
        )
    }

    #[test]
    fn descending_weight_order() {
        let blocks = fixture();
        let s = ProgressiveSchedule::build(&blocks, 4, WeightingScheme::Cbs);
        let weights: Vec<f64> = s.iter().map(|(_, _, w)| w).collect();
        assert!(weights.windows(2).all(|w| w[0] >= w[1]));
        // Strongest first: (0,1) with CBS 2.
        let (a, b, w) = s.iter().next().unwrap();
        assert_eq!((a.0, b.0, w), (0, 1, 2.0));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn budgeted_schedule_matches_full_prefix() {
        let blocks = fixture();
        let full = ProgressiveSchedule::build(&blocks, 4, WeightingScheme::Js);
        let bounded = ProgressiveSchedule::with_budget(&blocks, 4, WeightingScheme::Js, 2);
        assert_eq!(bounded.len(), 2);
        assert_eq!(bounded.prefix(2), full.prefix(2));
        // Larger budget than edges: everything.
        let all = ProgressiveSchedule::with_budget(&blocks, 4, WeightingScheme::Js, 100);
        assert_eq!(all.len(), full.len());
        assert_eq!(all.prefix(100), full.prefix(100));
    }

    #[test]
    fn zero_budget_is_empty() {
        let blocks = fixture();
        let s = ProgressiveSchedule::with_budget(&blocks, 4, WeightingScheme::Js, 0);
        assert!(s.is_empty());
        assert!(s.prefix(5).is_empty());
    }
}
