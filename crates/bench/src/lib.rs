//! Shared fixtures and the bench harness for the workspace benches.
//!
//! Every bench works on the same deterministic benchmark: a scaled-down
//! D1C-like Clean-Clean dataset and its Dirty derivative, blocked with Token
//! Blocking + Block Purging. Sizes are chosen so that `cargo bench`
//! completes in minutes while the measured ratios (optimized vs original
//! weighting, filtered vs unfiltered graphs, per-scheme overhead) remain
//! meaningful — they are cost-model properties, not scale properties.

#![warn(missing_docs)]

pub mod harness;

use er_blocking::{purging, BlockingMethod, TokenBlocking};
use er_datagen::presets;
use er_model::{BlockCollection, EntityCollection, GroundTruth};

/// A ready-to-bench workload.
pub struct Workload {
    /// The entity collection.
    pub collection: EntityCollection,
    /// Its duplicate pairs.
    pub ground_truth: GroundTruth,
    /// Token Blocking + size-based Block Purging output.
    pub blocks: BlockCollection,
}

fn scaled_d1c(scale: f64) -> er_datagen::DatasetConfig {
    let mut config = presets::d1c(13);
    config.matched_pairs = (config.matched_pairs as f64 * scale) as usize;
    config.side1.size = (config.side1.size as f64 * scale) as usize;
    config.side2.size = (config.side2.size as f64 * scale) as usize;
    config.object.vocab_size = (config.object.vocab_size as f64 * scale) as usize;
    config
}

fn blocked(collection: EntityCollection, ground_truth: GroundTruth) -> Workload {
    let mut blocks = TokenBlocking.build(&collection);
    purging::purge_by_size(&mut blocks, 0.5);
    Workload { collection, ground_truth, blocks }
}

/// The fixed bench dataset. Scaling d1c uniformly preserves the config
/// invariants (`matched_pairs` never exceeds a side size), so generation
/// cannot fail — the tests below exercise exactly this config.
fn bench_dataset() -> er_datagen::GeneratedDataset {
    match presets::build(&scaled_d1c(0.1)) {
        Ok(d) => d,
        Err(e) => unreachable!("bench preset rejected: {e}"),
    }
}

/// Builds the Clean-Clean bench workload (≈6.4k profiles at the default
/// 0.1 scale).
pub fn clean_workload() -> Workload {
    let d = bench_dataset();
    blocked(d.collection, d.ground_truth)
}

/// Builds the Dirty bench workload (same profiles, merged into one
/// collection).
pub fn dirty_workload() -> Workload {
    let d = bench_dataset().into_dirty();
    blocked(d.collection, d.ground_truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_nonempty_and_deterministic() {
        let a = clean_workload();
        let b = clean_workload();
        assert!(a.blocks.total_comparisons() > 0);
        assert_eq!(a.blocks.total_comparisons(), b.blocks.total_comparisons());
        assert_eq!(a.collection.len(), b.collection.len());
        let d = dirty_workload();
        assert_eq!(d.collection.len(), a.collection.len());
        assert!(!d.ground_truth.is_empty());
    }
}
