//! A minimal, std-only stand-in for the slice of the Criterion API the
//! workspace benches use.
//!
//! The workspace builds with no registry dependencies, so Criterion itself
//! is unavailable; this harness keeps the bench sources intact (groups,
//! `bench_function`, `iter`/`iter_batched`, `sample_size`) and reports
//! wall-clock statistics per benchmark. It makes no claim to Criterion's
//! statistical rigor — it exists so the timing-sensitive claims of the paper
//! stay runnable and comparable across commits.
//!
//! Environment knobs:
//!
//! * `BENCH_SAMPLE_SIZE` — override every group's sample size (e.g. `3` for
//!   a smoke run).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; accepted for source
/// compatibility — this harness always times the routine per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold; run one routine call per setup call.
    SmallInput,
    /// Accepted for compatibility; treated as [`BatchSize::SmallInput`].
    LargeInput,
}

/// Top-level benchmark driver: hands out named groups and prints a summary.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// A driver configured from the environment.
    pub fn from_env() -> Self {
        Criterion::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { criterion: self, name, sample_size: 10 }
    }

    /// Prints the closing line after every group has run.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.benchmarks_run);
    }
}

/// A named set of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (min 1; the
    /// `BENCH_SAMPLE_SIZE` environment variable overrides it globally).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = std::env::var("BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1))
            .unwrap_or(self.sample_size);
        let mut bencher = Bencher { samples, times: Vec::with_capacity(samples) };
        f(&mut bencher);
        let stats = Stats::from(&bencher.times);
        println!(
            "{}/{id}: mean {:>12?}  median {:>12?}  min {:>12?}  ({} samples)",
            self.name,
            stats.mean,
            stats.median,
            stats.min,
            bencher.times.len()
        );
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group (kept for Criterion source compatibility).
    pub fn finish(&mut self) {}
}

/// Collects timed samples of one routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples, after one
    /// untimed warm-up call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

/// Summary statistics over one benchmark's samples.
#[derive(Debug)]
struct Stats {
    mean: Duration,
    median: Duration,
    min: Duration,
}

impl Stats {
    fn from(times: &[Duration]) -> Stats {
        if times.is_empty() {
            return Stats { mean: Duration::ZERO, median: Duration::ZERO, min: Duration::ZERO };
        }
        let mut sorted: Vec<Duration> = times.to_vec();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        Stats {
            mean: total / sorted.len() as u32,
            median: sorted[sorted.len() / 2],
            min: sorted[0],
        }
    }
}

/// Declares a function running the given benchmark targets in order —
/// source-compatible with Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` for a bench binary — source-compatible with Criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::from_env();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::from_env();
        let mut group = c.benchmark_group("harness-test");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // One warm-up call plus three timed samples (BENCH_SAMPLE_SIZE may
        // override the sample count, so only the lower bound is fixed).
        assert!(calls >= 2);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::from_env();
        let mut group = c.benchmark_group("harness-test");
        group.sample_size(2);
        let mut setups = 0u32;
        let mut runs = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(|| setups += 1, |()| runs += 1, BatchSize::SmallInput)
        });
        assert_eq!(setups, runs);
        assert!(runs >= 2);
    }

    #[test]
    fn stats_of_empty_and_singleton() {
        let s = Stats::from(&[]);
        assert_eq!(s.mean, Duration::ZERO);
        let s = Stats::from(&[Duration::from_millis(5)]);
        assert_eq!(s.median, Duration::from_millis(5));
        assert_eq!(s.min, Duration::from_millis(5));
    }
}
