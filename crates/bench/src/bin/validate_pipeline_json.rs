//! Shape validator for `BENCH_pipeline.json` (emitted by the `pipeline_e2e`
//! bench). `scripts/bench.sh` runs it right after the bench so a drifting
//! emitter fails the script instead of silently producing a JSON the
//! perf-trajectory tooling can no longer read.
//!
//! Usage: `validate_pipeline_json [path]` (default: `BENCH_pipeline.json`
//! in the current directory). Exits non-zero with a message on any
//! missing/mistyped field.

use mb_observe::json::Json;
use std::process::ExitCode;

fn check(doc: &Json) -> Result<(), String> {
    let field = |obj: &Json, key: &str, what: &str| -> Result<Json, String> {
        obj.get(key).cloned().ok_or_else(|| format!("{what}: missing key `{key}`"))
    };

    // Document header.
    field(doc, "bench", "document")?
        .as_str()
        .filter(|&b| b == "pipeline_e2e")
        .ok_or("document: `bench` must be the string \"pipeline_e2e\"")?;
    field(doc, "workload", "document")?.as_str().ok_or("document: `workload` must be a string")?;
    field(doc, "entities", "document")?
        .as_u64()
        .filter(|&n| n > 0)
        .ok_or("document: `entities` must be a positive integer")?;
    field(doc, "samples_per_stage", "document")?
        .as_u64()
        .filter(|&n| n > 0)
        .ok_or("document: `samples_per_stage` must be a positive integer")?;

    // Per-(stage, impl) rows.
    let results = field(doc, "results", "document")?;
    let rows = results.as_arr().ok_or("document: `results` must be an array")?;
    if rows.is_empty() {
        return Err("document: `results` is empty".into());
    }
    const STAGES: [&str; 5] = ["build", "purge", "filter", "weight", "prune"];
    const IMPLS: [&str; 2] = ["legacy", "arena"];
    for (i, row) in rows.iter().enumerate() {
        let what = format!("results[{i}]");
        let stage = field(row, "stage", &what)?;
        let stage = stage.as_str().ok_or(format!("{what}: `stage` must be a string"))?;
        if !STAGES.contains(&stage) {
            return Err(format!("{what}: unknown stage `{stage}`"));
        }
        let imp = field(row, "impl", &what)?;
        let imp = imp.as_str().ok_or(format!("{what}: `impl` must be a string"))?;
        if !IMPLS.contains(&imp) {
            return Err(format!("{what}: unknown impl `{imp}`"));
        }
        for key in ["mean_ms", "median_ms", "min_ms"] {
            field(row, key, &what)?
                .as_f64()
                .filter(|ms| ms.is_finite() && *ms >= 0.0)
                .ok_or(format!("{what}: `{key}` must be a finite non-negative number"))?;
        }
        field(row, "samples", &what)?
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or(format!("{what}: `samples` must be a positive integer"))?;
        field(row, "allocs", &what)?.as_u64().ok_or(format!("{what}: `allocs` must be a u64"))?;
    }
    // Every stage present; build/filter/weight measured in both impls.
    for stage in STAGES {
        let has = |imp: &str| {
            rows.iter().any(|r| {
                r.get("stage").and_then(Json::as_str) == Some(stage)
                    && r.get("impl").and_then(Json::as_str) == Some(imp)
            })
        };
        if !has("arena") {
            return Err(format!("results: stage `{stage}` has no arena row"));
        }
        if matches!(stage, "build" | "filter" | "weight") && !has("legacy") {
            return Err(format!("results: stage `{stage}` has no legacy row"));
        }
    }

    // Summary: the headline allocation ratio must be present and coherent.
    let summary = field(doc, "summary", "document")?;
    let legacy = field(&summary, "build_weight_allocs_legacy", "summary")?
        .as_u64()
        .ok_or("summary: `build_weight_allocs_legacy` must be a u64")?;
    let arena = field(&summary, "build_weight_allocs_arena", "summary")?
        .as_u64()
        .ok_or("summary: `build_weight_allocs_arena` must be a u64")?;
    let ratio = field(&summary, "build_weight_alloc_ratio", "summary")?
        .as_f64()
        .filter(|r| r.is_finite() && *r >= 0.0)
        .ok_or("summary: `build_weight_alloc_ratio` must be a finite non-negative number")?;
    if arena > 0 && (ratio - legacy as f64 / arena as f64).abs() > 1e-9 {
        return Err(format!("summary: ratio {ratio} inconsistent with {legacy}/{arena}"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_pipeline_json: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate_pipeline_json: {path}: invalid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok(()) => {
            println!("validate_pipeline_json: {path}: OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_pipeline_json: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
