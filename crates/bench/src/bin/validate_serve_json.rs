//! Shape-checks `BENCH_serve.json` (written by the `serve_throughput` bench).
//!
//! Exits non-zero with a message naming the first offending field if the
//! document is missing a section, a number is absent or non-finite, the
//! latency percentiles are inverted, or the server's own request count
//! disagrees with the number of timed queries (it must cover at least the
//! round-trip sweep).

use mb_observe::json::Json;
use std::process::ExitCode;

fn field(doc: &Json, path: &str) -> Result<Json, String> {
    let mut cur = doc.clone();
    for key in path.split('.') {
        cur = cur.get(key).cloned().ok_or_else(|| format!("missing field `{path}`"))?;
    }
    Ok(cur)
}

fn finite(doc: &Json, path: &str) -> Result<f64, String> {
    let v = field(doc, path)?
        .as_f64()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("`{path}` is not a finite non-negative number"))?;
    Ok(v)
}

fn positive_uint(doc: &Json, path: &str) -> Result<u64, String> {
    field(doc, path)?
        .as_u64()
        .filter(|v| *v > 0)
        .ok_or_else(|| format!("`{path}` is not a positive integer"))
}

fn check(doc: &Json) -> Result<(), String> {
    let bench = field(doc, "bench")?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| "`bench` is not a string".to_string())?;
    if bench != "serve_throughput" {
        return Err(format!("`bench` is `{bench}`, expected `serve_throughput`"));
    }
    field(doc, "workload")?.as_str().ok_or_else(|| "`workload` is not a string".to_string())?;
    positive_uint(doc, "entities")?;
    let samples = positive_uint(doc, "samples")?;

    let p50 = finite(doc, "round_trip.p50_us")?;
    let p99 = finite(doc, "round_trip.p99_us")?;
    if p99 < p50 {
        return Err(format!("round_trip p99 ({p99}) is below p50 ({p50})"));
    }
    let qps = finite(doc, "round_trip.throughput_qps")?;
    if qps <= 0.0 {
        return Err(format!("round_trip.throughput_qps must be positive, got {qps}"));
    }
    let queries = positive_uint(doc, "round_trip.queries")?;

    finite(doc, "reload.mean_ms")?;
    finite(doc, "reload.min_ms")?;
    let reloads = positive_uint(doc, "reload.samples")?;
    finite(doc, "reload.post_reload_query_us")?;

    // One reload per sample round, generation 1 is the boot snapshot.
    let final_generation = positive_uint(doc, "final_generation")?;
    if final_generation != reloads + 1 {
        return Err(format!(
            "final_generation is {final_generation}, expected {} (one reload per round)",
            reloads + 1
        ));
    }
    if reloads != samples {
        return Err(format!("reload.samples is {reloads}, expected {samples}"));
    }
    // The server must have accounted for at least every timed query (the
    // warmup and post-reload probes add a few more).
    let served = positive_uint(doc, "requests_served")?;
    if served < queries {
        return Err(format!(
            "requests_served ({served}) is below the {queries} timed round-trip queries"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_serve_json: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("validate_serve_json: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok(()) => {
            println!("validate_serve_json: {path} OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_serve_json: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
