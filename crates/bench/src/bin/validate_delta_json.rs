//! Shape-checks `BENCH_delta.json` (written by the `delta_latency` bench).
//!
//! Exits non-zero with a message naming the first offending field if the
//! document is missing a section, a number is absent or non-finite, the
//! latency percentiles are inverted, compaction was not bit-identical to a
//! from-scratch rebuild, or a single upsert failed the acceptance bar: it
//! must be applied *and* queryable within 1 ms at p50, and at least 1000×
//! cheaper than the full rebuild path (bundle load → build → persist →
//! reload → first query) it replaces.

use mb_observe::json::Json;
use std::process::ExitCode;

fn field(doc: &Json, path: &str) -> Result<Json, String> {
    let mut cur = doc.clone();
    for key in path.split('.') {
        cur = cur.get(key).cloned().ok_or_else(|| format!("missing field `{path}`"))?;
    }
    Ok(cur)
}

fn finite(doc: &Json, path: &str) -> Result<f64, String> {
    field(doc, path)?
        .as_f64()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("`{path}` is not a finite non-negative number"))
}

fn positive_uint(doc: &Json, path: &str) -> Result<u64, String> {
    field(doc, path)?
        .as_u64()
        .filter(|v| *v > 0)
        .ok_or_else(|| format!("`{path}` is not a positive integer"))
}

fn ordered_pair(doc: &Json, lo: &str, hi: &str) -> Result<(f64, f64), String> {
    let (p50, p99) = (finite(doc, lo)?, finite(doc, hi)?);
    if p99 < p50 {
        return Err(format!("`{hi}` ({p99}) is below `{lo}` ({p50})"));
    }
    Ok((p50, p99))
}

fn check(doc: &Json) -> Result<(), String> {
    let bench = field(doc, "bench")?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| "`bench` is not a string".to_string())?;
    if bench != "delta_latency" {
        return Err(format!("`bench` is `{bench}`, expected `delta_latency`"));
    }
    field(doc, "workload")?.as_str().ok_or_else(|| "`workload` is not a string".to_string())?;
    positive_uint(doc, "entities")?;
    positive_uint(doc, "samples")?;
    positive_uint(doc, "upsert.ops")?;

    ordered_pair(doc, "upsert.apply_p50_us", "upsert.apply_p99_us")?;
    ordered_pair(doc, "upsert.query_p50_us", "upsert.query_p99_us")?;
    let (total_p50, _) =
        ordered_pair(doc, "upsert.applied_queryable_p50_us", "upsert.applied_queryable_p99_us")?;
    if total_p50 > 1000.0 {
        return Err(format!(
            "a single upsert must be applied and queryable within 1 ms at p50, got {total_p50} us"
        ));
    }

    finite(doc, "compaction.compact_ms")?;
    let rebuild_ms = finite(doc, "compaction.rebuild_ms")?;
    if rebuild_ms <= 0.0 {
        return Err(format!("compaction.rebuild_ms must be positive, got {rebuild_ms}"));
    }
    let rebuild_path_ms = finite(doc, "compaction.rebuild_path_ms")?;
    if rebuild_path_ms < rebuild_ms {
        return Err(format!(
            "compaction.rebuild_path_ms ({rebuild_path_ms}) is below the build-only \
             compaction.rebuild_ms ({rebuild_ms})"
        ));
    }
    positive_uint(doc, "compaction.ops_folded")?;
    match field(doc, "compaction.bit_identical")? {
        Json::Bool(true) => {}
        other => {
            return Err(format!(
                "compaction.bit_identical must be true, got {}",
                other.render_pretty()
            ))
        }
    }

    let speedup = finite(doc, "speedup_vs_rebuild")?;
    if speedup < 1000.0 {
        return Err(format!(
            "a live upsert must be at least 1000x cheaper than the rebuild path it \
             replaces, got {speedup:.0}x"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_delta.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_delta_json: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("validate_delta_json: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok(()) => {
            println!("validate_delta_json: {path} OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_delta_json: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
