//! Shape-checks `results/lint.json` (written by
//! `er-lint --workspace --format json` in `scripts/check.sh`).
//!
//! Exits non-zero with a message naming the first offending field if the
//! document is not schema `er-lint/1`, a finding record is malformed, or
//! the `status` field disagrees with the budget arrays. Lives beside the
//! bench-JSON validators because er-lint itself is dependency-free by
//! design — the JSON reader (`mb_observe::json`) cannot be used there.

use mb_observe::json::Json;
use std::process::ExitCode;

fn str_field(obj: &Json, key: &str, ctx: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{ctx}: `{key}` is not a string"))
}

fn finding(obj: &Json, ctx: &str) -> Result<(), String> {
    let file = str_field(obj, "file", ctx)?;
    if file.is_empty() {
        return Err(format!("{ctx}: `file` is empty"));
    }
    obj.get("line")
        .and_then(Json::as_u64)
        .filter(|l| *l > 0)
        .ok_or_else(|| format!("{ctx}: `line` is not a positive integer"))?;
    let rule = str_field(obj, "rule", ctx)?;
    if rule.is_empty() {
        return Err(format!("{ctx}: `rule` is empty"));
    }
    let severity = str_field(obj, "severity", ctx)?;
    if severity != "error" && severity != "warning" {
        return Err(format!("{ctx}: unknown severity `{severity}`"));
    }
    // `snippet` is required (may be empty for blank lines); `note` is
    // optional but must be a string when present.
    str_field(obj, "snippet", ctx)?;
    if let Some(note) = obj.get("note") {
        if note.as_str().is_none() {
            return Err(format!("{ctx}: `note` is not a string"));
        }
    }
    Ok(())
}

fn finding_array(doc: &Json, key: &str) -> Result<usize, String> {
    let arr =
        doc.get(key).and_then(Json::as_arr).ok_or_else(|| format!("`{key}` is not an array"))?;
    for (i, obj) in arr.iter().enumerate() {
        finding(obj, &format!("{key}[{i}]"))?;
    }
    Ok(arr.len())
}

fn check(doc: &Json) -> Result<(), String> {
    let schema = str_field(doc, "schema", "document")?;
    if schema != "er-lint/1" {
        return Err(format!("`schema` is `{schema}`, expected `er-lint/1`"));
    }
    doc.get("files")
        .and_then(Json::as_u64)
        .filter(|f| *f > 0)
        .ok_or_else(|| "`files` is not a positive integer".to_string())?;
    finding_array(doc, "findings")?;
    let over = finding_array(doc, "over_budget")?;
    let stale = doc
        .get("stale")
        .and_then(Json::as_arr)
        .ok_or_else(|| "`stale` is not an array".to_string())?;
    for (i, s) in stale.iter().enumerate() {
        if s.as_str().is_none() {
            return Err(format!("stale[{i}] is not a string"));
        }
    }
    doc.get("suppressed")
        .and_then(Json::as_u64)
        .ok_or_else(|| "`suppressed` is not an unsigned integer".to_string())?;
    let status = str_field(doc, "status", "document")?;
    let expected = if over == 0 && stale.is_empty() { "clean" } else { "violations" };
    if status != expected {
        return Err(format!(
            "`status` is `{status}` but over_budget={over}, stale={} imply `{expected}`",
            stale.len()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| "results/lint.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_lint_json: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("validate_lint_json: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok(()) => {
            println!("validate_lint_json: {path} OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_lint_json: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
