//! Shape-checks `BENCH_query.json` (written by the `query_latency` bench).
//!
//! Exits non-zero with a message naming the first offending field if the
//! document is missing a section, a number is absent or non-finite, or the
//! batch table does not cover the 1/2/4/8 thread counts.

use mb_observe::json::Json;
use std::process::ExitCode;

fn field(doc: &Json, path: &str) -> Result<Json, String> {
    let mut cur = doc.clone();
    for key in path.split('.') {
        cur = cur.get(key).cloned().ok_or_else(|| format!("missing field `{path}`"))?;
    }
    Ok(cur)
}

fn finite(doc: &Json, path: &str) -> Result<f64, String> {
    let v = field(doc, path)?
        .as_f64()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("`{path}` is not a finite non-negative number"))?;
    Ok(v)
}

fn positive_uint(doc: &Json, path: &str) -> Result<u64, String> {
    field(doc, path)?
        .as_u64()
        .filter(|v| *v > 0)
        .ok_or_else(|| format!("`{path}` is not a positive integer"))
}

fn check(doc: &Json) -> Result<(), String> {
    let bench = field(doc, "bench")?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| "`bench` is not a string".to_string())?;
    if bench != "query_latency" {
        return Err(format!("`bench` is `{bench}`, expected `query_latency`"));
    }
    field(doc, "workload")?.as_str().ok_or_else(|| "`workload` is not a string".to_string())?;
    positive_uint(doc, "entities")?;
    positive_uint(doc, "samples")?;
    positive_uint(doc, "snapshot_bytes")?;

    finite(doc, "load.mean_ms")?;
    finite(doc, "load.min_ms")?;
    finite(doc, "load.mb_per_s")?;
    positive_uint(doc, "load.samples")?;

    finite(doc, "load_zero_copy.mean_ms")?;
    finite(doc, "load_zero_copy.min_ms")?;
    finite(doc, "load_zero_copy.mb_per_s")?;
    positive_uint(doc, "load_zero_copy.samples")?;
    let speedup = finite(doc, "load_zero_copy.speedup_vs_owned")?;
    if speedup <= 0.0 {
        return Err(format!("load_zero_copy.speedup_vs_owned must be positive, got {speedup}"));
    }

    let p50 = finite(doc, "single_query.p50_us")?;
    let p99 = finite(doc, "single_query.p99_us")?;
    if p99 < p50 {
        return Err(format!("single_query p99 ({p99}) is below p50 ({p50})"));
    }
    positive_uint(doc, "single_query.queries")?;

    let batch = field(doc, "batch")?;
    let rows = batch.as_arr().ok_or_else(|| "`batch` is not an array".to_string())?.to_vec();
    let mut threads_seen = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let threads = positive_uint(row, "threads").map_err(|e| format!("batch[{i}]: {e}"))?;
        finite(row, "mean_ms").map_err(|e| format!("batch[{i}]: {e}"))?;
        finite(row, "min_ms").map_err(|e| format!("batch[{i}]: {e}"))?;
        let qps = finite(row, "throughput_qps").map_err(|e| format!("batch[{i}]: {e}"))?;
        if qps <= 0.0 {
            return Err(format!("batch[{i}]: throughput_qps must be positive, got {qps}"));
        }
        positive_uint(row, "samples").map_err(|e| format!("batch[{i}]: {e}"))?;
        threads_seen.push(threads);
    }
    if threads_seen != [1, 2, 4, 8] {
        return Err(format!("batch thread counts are {threads_seen:?}, expected [1, 2, 4, 8]"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_query.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("validate_query_json: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("validate_query_json: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok(()) => {
            println!("validate_query_json: {path} OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_query_json: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
