//! Table 5 / §6.3: Optimized Edge Weighting (Algorithm 3) vs Original Edge
//! Weighting (Algorithm 2).
//!
//! The paper reports 19–92% OTime reductions, growing with BPE. Here both
//! implementations enumerate the same weighted edges over the same blocks;
//! the per-edge cost model is the entire difference.

use er_bench::harness::{BatchSize, Criterion};
use er_bench::{clean_workload, dirty_workload};
use er_bench::{criterion_group, criterion_main};
use mb_core::weighting::{optimized, original};
use mb_core::weights::{EdgeWeigher, WeightingScheme};
use mb_core::GraphContext;
use std::hint::black_box;

fn bench_edge_weighting(c: &mut Criterion) {
    for (label, workload) in [("clean", clean_workload()), ("dirty", dirty_workload())] {
        let ctx = GraphContext::new(&workload.blocks, workload.collection.split());
        let mut group = c.benchmark_group(format!("edge_weighting/{label}"));
        group.sample_size(10);
        for scheme in [WeightingScheme::Js, WeightingScheme::Arcs] {
            let weigher = EdgeWeigher::new(scheme, &ctx);
            group.bench_function(format!("optimized/{}", scheme.name()), |b| {
                b.iter_batched(
                    || (),
                    |()| {
                        let mut acc = 0.0f64;
                        optimized::for_each_edge(&ctx, &weigher, |_, _, w| acc += w);
                        black_box(acc)
                    },
                    BatchSize::SmallInput,
                )
            });
            group.bench_function(format!("original/{}", scheme.name()), |b| {
                b.iter_batched(
                    || (),
                    |()| {
                        let mut acc = 0.0f64;
                        original::for_each_edge(&ctx, &weigher, |_, _, w| acc += w);
                        black_box(acc)
                    },
                    BatchSize::SmallInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_edge_weighting);
criterion_main!(benches);
