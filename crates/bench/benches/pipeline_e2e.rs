//! End-to-end pipeline bench with allocation accounting: build → purge →
//! filter → weight → prune, each stage timed *and* allocation-counted via
//! the counting global allocator ([`mb_observe::alloc_track`]).
//!
//! Every stage (except prune, see below) runs in two implementations:
//!
//! * `legacy` — a faithful replication of the pre-CSR data layout this
//!   repository used before the arena refactor: owned `Vec<Block>`-style
//!   collections with one `Vec<EntityId>` pair per block, `String`-keyed
//!   grouping through a two-table interner (hash map + reverse vector, two
//!   `String` clones per new key), one `String` allocation per token
//!   occurrence, per-block `Vec` collects in Block Filtering, and a per-edge
//!   `1/‖b‖` divide in the ARCS sweep. Kept here as the *before* baseline.
//! * `arena` — the real pipeline over the CSR arena + interned postings.
//!
//! Pruning operates on the weighted edge stream, not on the block layout, so
//! it has no meaningful legacy variant; its single `arena` row exists to
//! keep the end-to-end wall-clock picture complete.
//!
//! Output: `BENCH_pipeline.json` at the repository root (override with
//! `BENCH_OUT`). One record per (stage, impl) with mean/median/min wall-ms
//! and the allocation count of a single invocation, plus a summary with the
//! build+weight allocation ratio — the headline number of the refactor.
//!
//! Environment knobs: `BENCH_SAMPLE_SIZE` (timed samples per stage,
//! default 5), `BENCH_OUT` (output path).

use er_bench::clean_workload;
use er_blocking::{BlockingMethod, TokenBlocking};
use er_model::fxhash::FxHashMap;
use er_model::tokenize::tokens;
use er_model::{BlockCollection, EntityCollection, EntityId, ErKind};
use mb_core::filter::block_filtering;
use mb_core::weights::EdgeWeigher;
use mb_core::{GraphContext, MetaBlocking, PruningScheme, WeightingScheme};
use mb_observe::alloc_track::{alloc_count, TrackingAllocator};
use mb_observe::json::Json;
use std::hint::black_box;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: TrackingAllocator<std::alloc::System> = TrackingAllocator::new(std::alloc::System);

// ---------------------------------------------------------------------------
// The legacy layout, replicated: one heap-owned member pair per block.

#[derive(Clone)]
struct LegacyBlock {
    left: Vec<EntityId>,
    right: Vec<EntityId>,
}

impl LegacyBlock {
    fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    fn cardinality(&self) -> u64 {
        if self.right.is_empty() {
            let n = self.left.len() as u64;
            n * n.saturating_sub(1) / 2
        } else {
            self.left.len() as u64 * self.right.len() as u64
        }
    }
}

/// Pre-refactor Token Blocking: `String` tokens per profile, a two-table
/// interner, and `Vec<Vec<EntityId>>` sides grown per key.
fn legacy_token_blocking(collection: &EntityCollection) -> Vec<LegacyBlock> {
    let clean = collection.kind() == ErKind::CleanClean;
    let split = collection.split();
    let mut ids: FxHashMap<String, u32> = FxHashMap::default();
    let mut strings: Vec<String> = Vec::new();
    let mut left: Vec<Vec<EntityId>> = Vec::new();
    let mut right: Vec<Vec<EntityId>> = Vec::new();
    for (id, profile) in collection.iter() {
        let mut toks: Vec<String> = profile.values().flat_map(tokens).collect();
        toks.sort_unstable();
        toks.dedup();
        for t in &toks {
            let key = match ids.get(t.as_str()) {
                Some(&k) => k,
                None => {
                    let k = strings.len() as u32;
                    ids.insert(t.clone(), k);
                    strings.push(t.clone());
                    k
                }
            } as usize;
            if key == left.len() {
                left.push(Vec::new());
                right.push(Vec::new());
            }
            let side = if clean && id.idx() >= split { &mut right[key] } else { &mut left[key] };
            if side.last() != Some(&id) {
                side.push(id);
            }
        }
    }
    let mut out = Vec::new();
    for (l, r) in left.into_iter().zip(right) {
        let keep = if clean { !l.is_empty() && !r.is_empty() } else { l.len() >= 2 };
        if keep {
            out.push(LegacyBlock { left: l, right: r });
        }
    }
    out
}

fn legacy_purge_by_size(blocks: &mut Vec<LegacyBlock>, num_entities: usize, ratio: f64) {
    let limit = (num_entities as f64 * ratio).floor() as usize;
    blocks.retain(|b| b.size() <= limit);
}

/// Pre-refactor Block Filtering: per-block `Vec` collects of the surviving
/// members, one owned block pushed per kept block.
fn legacy_block_filtering(
    blocks: &[LegacyBlock],
    clean: bool,
    num_entities: usize,
    r: f64,
) -> Vec<LegacyBlock> {
    let mut counts = vec![0u32; num_entities];
    for b in blocks {
        for e in b.left.iter().chain(&b.right) {
            counts[e.idx()] += 1;
        }
    }
    let limits: Vec<u32> = counts
        .iter()
        .map(|&c| if c == 0 { 0 } else { ((r * c as f64).round() as u32).max(1) })
        .collect();
    let mut order: Vec<u32> = (0..blocks.len() as u32).collect();
    order.sort_by_key(|&k| blocks[k as usize].cardinality());
    let mut used = vec![0u32; num_entities];
    let mut kept = Vec::with_capacity(blocks.len());
    for &k in &order {
        let block = &blocks[k as usize];
        let keep = |id: EntityId, used: &mut [u32]| {
            if used[id.idx()] < limits[id.idx()] {
                used[id.idx()] += 1;
                true
            } else {
                false
            }
        };
        let left: Vec<EntityId> =
            block.left.iter().copied().filter(|&e| keep(e, &mut used)).collect();
        let right: Vec<EntityId> =
            block.right.iter().copied().filter(|&e| keep(e, &mut used)).collect();
        let keep_block = if clean { !left.is_empty() && !right.is_empty() } else { left.len() > 1 };
        if keep_block {
            kept.push(LegacyBlock { left, right });
        }
    }
    kept
}

/// Pre-refactor ARCS sweep: entity-index build over the owned blocks plus a
/// node-centric scan with an inline `1/‖b‖` divide per common block.
fn legacy_arcs_sweep(blocks: &[LegacyBlock], num_entities: usize, split: usize) -> f64 {
    // Flat entity index (the pre-refactor EntityIndex was already CSR).
    let mut counts = vec![0u32; num_entities];
    for b in blocks {
        for e in b.left.iter().chain(&b.right) {
            counts[e.idx()] += 1;
        }
    }
    let mut offsets = vec![0u32; num_entities + 1];
    let mut acc = 0u32;
    for (i, &c) in counts.iter().enumerate() {
        offsets[i] = acc;
        acc += c;
    }
    offsets[num_entities] = acc;
    let mut lists = vec![0u32; acc as usize];
    let mut cursor = offsets.clone();
    for (k, b) in blocks.iter().enumerate() {
        for e in b.left.iter().chain(&b.right) {
            lists[cursor[e.idx()] as usize] = k as u32;
            cursor[e.idx()] += 1;
        }
    }
    let cards: Vec<f64> = blocks.iter().map(|b| b.cardinality() as f64).collect();

    let dirty = split >= num_entities;
    let mut flags = vec![0u32; num_entities];
    let mut score = vec![0f64; num_entities];
    let mut neighbors: Vec<u32> = Vec::new();
    let mut tick = 0u32;
    let (mut total, mut edges) = (0f64, 0u64);
    for pivot in 0..split.min(num_entities) as u32 {
        tick += 1;
        neighbors.clear();
        let (lo, hi) = (offsets[pivot as usize] as usize, offsets[pivot as usize + 1] as usize);
        for &k in &lists[lo..hi] {
            let b = &blocks[k as usize];
            let increment = 1.0 / cards[k as usize];
            let members = if dirty { &b.left } else { &b.right };
            for &j in members {
                if j.0 == pivot || (dirty && j.0 < pivot) {
                    continue;
                }
                let idx = j.idx();
                if flags[idx] != tick {
                    flags[idx] = tick;
                    score[idx] = 0.0;
                    neighbors.push(j.0);
                }
                score[idx] += increment;
            }
        }
        for &j in &neighbors {
            total += score[j as usize];
            edges += 1;
        }
    }
    if edges == 0 {
        0.0
    } else {
        total / edges as f64
    }
}

// ---------------------------------------------------------------------------
// Measurement plumbing.

struct Measured {
    times: Vec<Duration>,
    allocs: u64,
}

/// Times `routine` on fresh input from `setup` (`setup` is untimed) and
/// counts the allocations of one invocation.
fn measure<I, R>(
    samples: usize,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> R,
) -> Measured {
    let input = setup();
    let before = alloc_count();
    black_box(routine(input));
    let allocs = alloc_count() - before;
    let times = (0..samples)
        .map(|_| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        })
        .collect();
    Measured { times, allocs }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn record(stage: &str, imp: &str, m: &Measured) -> Json {
    let mut sorted = m.times.clone();
    sorted.sort_unstable();
    let total: Duration = sorted.iter().sum();
    let mut obj = Json::obj();
    obj.push("stage", Json::Str(stage.into()));
    obj.push("impl", Json::Str(imp.into()));
    obj.push("mean_ms", Json::Num(ms(total / sorted.len() as u32)));
    obj.push("median_ms", Json::Num(ms(sorted[sorted.len() / 2])));
    obj.push("min_ms", Json::Num(ms(sorted[0])));
    obj.push("samples", Json::Uint(sorted.len() as u64));
    obj.push("allocs", Json::Uint(m.allocs));
    println!(
        "{stage:>8}/{imp}: mean {:>10.3} ms  min {:>10.3} ms  allocs {:>9}",
        ms(total / sorted.len() as u32),
        ms(sorted[0]),
        m.allocs
    );
    obj
}

fn sample_count() -> usize {
    std::env::var("BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(5)
}

fn main() {
    let samples = sample_count();
    let workload = clean_workload();
    let collection = &workload.collection;
    let split = collection.split();
    let n = collection.len();
    let clean = collection.kind() == ErKind::CleanClean;
    println!("pipeline-e2e: {n} entities, {samples} samples per stage");

    let mut rows: Vec<Json> = Vec::new();
    let mut legacy_bw_allocs = 0u64;
    let mut arena_bw_allocs = 0u64;

    // --- build -------------------------------------------------------------
    let m = measure(samples, || (), |()| legacy_token_blocking(collection));
    legacy_bw_allocs += m.allocs;
    rows.push(record("build", "legacy", &m));
    let m = measure(samples, || (), |()| TokenBlocking.build(collection));
    arena_bw_allocs += m.allocs;
    rows.push(record("build", "arena", &m));

    let legacy_built = legacy_token_blocking(collection);
    let arena_built = TokenBlocking.build(collection);

    // --- purge -------------------------------------------------------------
    let m = measure(
        samples,
        || legacy_built.clone(),
        |mut b| {
            legacy_purge_by_size(&mut b, n, 0.5);
            b
        },
    );
    rows.push(record("purge", "legacy", &m));
    let m = measure(
        samples,
        || arena_built.clone(),
        |mut b: BlockCollection| {
            er_blocking::purging::purge_by_size(&mut b, 0.5);
            b
        },
    );
    rows.push(record("purge", "arena", &m));

    let mut legacy_purged = legacy_built.clone();
    legacy_purge_by_size(&mut legacy_purged, n, 0.5);
    let mut arena_purged = arena_built.clone();
    er_blocking::purging::purge_by_size(&mut arena_purged, 0.5);

    // --- filter ------------------------------------------------------------
    let m = measure(samples, || (), |()| legacy_block_filtering(&legacy_purged, clean, n, 0.8));
    rows.push(record("filter", "legacy", &m));
    let m = measure(
        samples,
        || (),
        |()| block_filtering(&arena_purged, 0.8).unwrap_or_else(|e| panic!("filtering: {e}")),
    );
    rows.push(record("filter", "arena", &m));

    let legacy_filtered = legacy_block_filtering(&legacy_purged, clean, n, 0.8);
    let arena_filtered =
        block_filtering(&arena_purged, 0.8).unwrap_or_else(|e| panic!("filtering: {e}"));

    // --- weight (full ARCS sweep incl. graph-context construction) ---------
    let m = measure(samples, || (), |()| legacy_arcs_sweep(&legacy_filtered, n, split));
    legacy_bw_allocs += m.allocs;
    rows.push(record("weight", "legacy", &m));
    let m = measure(
        samples,
        || (),
        |()| {
            let ctx = GraphContext::new(&arena_filtered, split);
            let weigher = EdgeWeigher::new(WeightingScheme::Arcs, &ctx);
            mb_core::parallel::mean_edge_weight(&ctx, &weigher, 1)
        },
    );
    arena_bw_allocs += m.allocs;
    rows.push(record("weight", "arena", &m));

    // --- prune (layout-independent; arena row only, as the control) --------
    let pipeline = MetaBlocking::new(WeightingScheme::Js, PruningScheme::Cnp).with_threads(1);
    let m = measure(
        samples,
        || (),
        |()| {
            let mut count = 0u64;
            pipeline
                .run(&arena_filtered, split, &mut mb_core::Noop, |_, _| count += 1)
                .unwrap_or_else(|e| panic!("pipeline: {e}"));
            count
        },
    );
    rows.push(record("prune", "arena", &m));

    let ratio =
        if arena_bw_allocs == 0 { 0.0 } else { legacy_bw_allocs as f64 / arena_bw_allocs as f64 };
    println!(
        "\nbuild+weight allocations: legacy {legacy_bw_allocs}, arena {arena_bw_allocs} \
         ({ratio:.1}x fewer)"
    );

    let mut summary = Json::obj();
    summary.push("build_weight_allocs_legacy", Json::Uint(legacy_bw_allocs));
    summary.push("build_weight_allocs_arena", Json::Uint(arena_bw_allocs));
    summary.push("build_weight_alloc_ratio", Json::Num(ratio));

    let mut doc = Json::obj();
    doc.push("bench", Json::Str("pipeline_e2e".into()));
    doc.push("workload", Json::Str("d1c-0.1 clean-clean".into()));
    doc.push("entities", Json::Uint(n as u64));
    doc.push("samples_per_stage", Json::Uint(samples as u64));
    doc.push("results", Json::Arr(rows));
    doc.push("summary", summary);

    let path = std::env::var("BENCH_OUT").ok().filter(|p| !p.is_empty()).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
    });
    std::fs::write(&path, doc.render_pretty()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
