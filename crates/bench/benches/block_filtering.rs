//! §4.1 / §6.3: Block Filtering as pre-processing.
//!
//! Two claims: the filtering pass itself is cheap (sorting-dominated,
//! `O(|B| log |B|)`), and the downstream graph sweep gets ~2× faster because
//! the filtered graph has roughly half the edges.

use er_bench::clean_workload;
use er_bench::harness::Criterion;
use er_bench::{criterion_group, criterion_main};
use mb_core::filter::{block_filtering, block_filtering_with_order, BlockOrder};
use mb_core::weighting::optimized;
use mb_core::weights::{EdgeWeigher, WeightingScheme};
use mb_core::GraphContext;
use std::hint::black_box;

fn bench_block_filtering(c: &mut Criterion) {
    let workload = clean_workload();
    let split = workload.collection.split();

    let mut group = c.benchmark_group("block_filtering");
    group.sample_size(10);

    // The filtering pass itself, across ratios.
    for r in [0.25, 0.55, 0.8] {
        group.bench_function(format!("filter/r={r}"), |b| {
            b.iter(|| black_box(block_filtering(&workload.blocks, r).unwrap()))
        });
    }

    // The importance-order ablation: input order skips the sort.
    group.bench_function("filter/r=0.8/input-order", |b| {
        b.iter(|| {
            black_box(block_filtering_with_order(&workload.blocks, 0.8, BlockOrder::Input).unwrap())
        })
    });

    // Downstream effect: one full JS edge sweep before vs after filtering.
    let filtered = block_filtering(&workload.blocks, 0.8).unwrap();
    for (label, blocks) in [("unfiltered", &workload.blocks), ("filtered", &filtered)] {
        let ctx = GraphContext::new(blocks, split);
        let weigher = EdgeWeigher::new(WeightingScheme::Js, &ctx);
        group.bench_function(format!("edge_sweep/{label}"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                optimized::for_each_edge(&ctx, &weigher, |_, _, w| acc += w);
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_filtering);
criterion_main!(benches);
