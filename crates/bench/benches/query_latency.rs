//! Serving-layer latency bench: snapshot load time, single-query latency
//! percentiles, and batch query throughput across thread counts.
//!
//! The workload is the Dirty d1c-0.1 benchmark frozen into an `mb-serve`
//! snapshot (Token Blocking + Block Filtering at r = 0.8). Three
//! measurements:
//!
//! * **load** — full `Snapshot::read_from` (read + checksum + structural
//!   validation + threshold verification + deep decode), wall-ms and MB/s.
//! * **zero-copy load** — `SnapshotView::read_from` (read + checksum +
//!   validation, sections *borrowed* from the loaded buffer), wall-ms, MB/s,
//!   and the speedup over the owned decode.
//! * **single query** — per-entity `QueryEngine::query` latency in µs,
//!   reported as p50/p99 over every entity × `BENCH_SAMPLE_SIZE` rounds.
//! * **batch** — `QueryEngine::batch` at 1/2/4/8 threads, wall-ms and
//!   queries/second.
//!
//! Output: `BENCH_query.json` at the repository root (override with
//! `BENCH_OUT`); `validate_query_json` checks its shape in
//! `scripts/bench.sh`.

use er_bench::dirty_workload;
use mb_core::{Noop, PipelineConfig, PruningScheme, WeightingScheme};
use mb_observe::json::Json;
use mb_serve::{CandidateRequest, QueryEngine, Snapshot, SnapshotView};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn sample_count() -> usize {
    std::env::var("BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(5)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let samples = sample_count();
    let workload = dirty_workload();
    let n = workload.collection.len();
    let config = PipelineConfig {
        weighting: WeightingScheme::Js,
        pruning: PruningScheme::Cnp,
        filter_ratio: Some(0.8),
        ..PipelineConfig::default()
    };
    let snapshot = Snapshot::build(&workload.collection, config)
        .unwrap_or_else(|e| panic!("building snapshot: {e}"));
    let path = std::env::temp_dir().join("er_bench_query.mbsnap");
    snapshot.write_to(&path).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "query-latency: {n} entities, {} blocks, {snapshot_bytes} snapshot bytes, \
         {samples} samples",
        snapshot.blocks().size()
    );

    // --- snapshot load -----------------------------------------------------
    let mut load_times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let s = Snapshot::read_from(&path, &mut Noop)
                .unwrap_or_else(|e| panic!("loading snapshot: {e}"));
            black_box(s.num_entities());
            start.elapsed()
        })
        .collect();
    load_times.sort_unstable();
    let load_mean = load_times.iter().sum::<Duration>() / load_times.len() as u32;
    let mb_per_s = |mean: Duration| snapshot_bytes as f64 / 1e6 / mean.as_secs_f64();
    println!(
        "    load: mean {:>8.3} ms  min {:>8.3} ms  {:>8.1} MB/s",
        ms(load_mean),
        ms(load_times[0]),
        mb_per_s(load_mean)
    );
    let mut load = Json::obj();
    load.push("mean_ms", Json::Num(ms(load_mean)));
    load.push("min_ms", Json::Num(ms(load_times[0])));
    load.push("mb_per_s", Json::Num(mb_per_s(load_mean)));
    load.push("samples", Json::Uint(load_times.len() as u64));

    // --- zero-copy snapshot load -------------------------------------------
    let mut view_times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let v = SnapshotView::read_from(&path, &mut Noop)
                .unwrap_or_else(|e| panic!("view-loading snapshot: {e}"));
            black_box(v.num_entities());
            start.elapsed()
        })
        .collect();
    view_times.sort_unstable();
    let view_mean = view_times.iter().sum::<Duration>() / view_times.len() as u32;
    let speedup = load_mean.as_secs_f64() / view_mean.as_secs_f64().max(1e-9);
    println!(
        "    zero: mean {:>8.3} ms  min {:>8.3} ms  {:>8.1} MB/s  ({speedup:.1}x vs owned)",
        ms(view_mean),
        ms(view_times[0]),
        mb_per_s(view_mean)
    );
    let mut load_zero_copy = Json::obj();
    load_zero_copy.push("mean_ms", Json::Num(ms(view_mean)));
    load_zero_copy.push("min_ms", Json::Num(ms(view_times[0])));
    load_zero_copy.push("mb_per_s", Json::Num(mb_per_s(view_mean)));
    load_zero_copy.push("speedup_vs_owned", Json::Num(speedup));
    load_zero_copy.push("samples", Json::Uint(view_times.len() as u64));

    let snapshot =
        Snapshot::read_from(&path, &mut Noop).unwrap_or_else(|e| panic!("reloading snapshot: {e}"));
    let mut engine = QueryEngine::new(&snapshot);
    let retention = engine.default_retention();

    // --- single-query latency (µs percentiles over all entities) -----------
    let mut lat_us: Vec<f64> = Vec::with_capacity(n * samples);
    for _ in 0..samples {
        for pivot in 0..n as u32 {
            let request =
                CandidateRequest::entity(er_model::EntityId(pivot)).with_retention(retention);
            let start = Instant::now();
            let response = engine
                .execute(&request, &mut Noop)
                .unwrap_or_else(|e| panic!("query {pivot}: {e}"));
            black_box(&response);
            lat_us.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    lat_us.sort_unstable_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    println!("  single: p50 {p50:>8.2} us  p99 {p99:>8.2} us  ({} timed queries)", lat_us.len());
    let mut single = Json::obj();
    single.push("p50_us", Json::Num(p50));
    single.push("p99_us", Json::Num(p99));
    single.push("queries", Json::Uint(lat_us.len() as u64));

    // --- batch throughput across thread counts ------------------------------
    let mut batch_rows: Vec<Json> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let request = CandidateRequest::batch().with_retention(retention).with_threads(threads);
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                let response = engine
                    .execute(&request, &mut Noop)
                    .unwrap_or_else(|e| panic!("batch({threads}): {e}"));
                black_box(&response);
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let qps = n as f64 / mean.as_secs_f64();
        println!(
            "   batch: {threads} thread(s)  mean {:>8.3} ms  min {:>8.3} ms  {qps:>10.0} q/s",
            ms(mean),
            ms(times[0])
        );
        let mut row = Json::obj();
        row.push("threads", Json::Uint(threads as u64));
        row.push("mean_ms", Json::Num(ms(mean)));
        row.push("min_ms", Json::Num(ms(times[0])));
        row.push("throughput_qps", Json::Num(qps));
        row.push("samples", Json::Uint(times.len() as u64));
        batch_rows.push(row);
    }

    let mut doc = Json::obj();
    doc.push("bench", Json::Str("query_latency".into()));
    doc.push("workload", Json::Str("d1c-0.1 dirty, filter 0.8".into()));
    doc.push("entities", Json::Uint(n as u64));
    doc.push("samples", Json::Uint(samples as u64));
    doc.push("snapshot_bytes", Json::Uint(snapshot_bytes));
    doc.push("load", load);
    doc.push("load_zero_copy", load_zero_copy);
    doc.push("single_query", single);
    doc.push("batch", Json::Arr(batch_rows));

    let out = std::env::var("BENCH_OUT").ok().filter(|p| !p.is_empty()).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json").to_string()
    });
    std::fs::write(&out, doc.render_pretty()).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    std::fs::remove_file(&path).ok();
    println!("wrote {out}");
}
