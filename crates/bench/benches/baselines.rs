//! Table 6 OTime shape: the baselines against the graph-based schemes.
//!
//! Graph-free Meta-blocking must be the cheapest by far (no weights, no
//! graph); Iterative Blocking sits between it and the graph-based schemes
//! on small data but scales worse (it re-walks every block comparison).

use er_baselines::IterativeBlocking;
use er_bench::clean_workload;
use er_bench::harness::Criterion;
use er_bench::{criterion_group, criterion_main};
use er_model::matching::OracleMatcher;
use mb_core::propagation::{comparison_propagation, comparison_propagation_lecobi};
use mb_core::{pipeline, GraphContext, MetaBlocking, PruningScheme, WeightingScheme};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let workload = clean_workload();
    let split = workload.collection.split();

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);

    group.bench_function("graph_free/r=0.25", |b| {
        b.iter(|| {
            let mut n = 0u64;
            pipeline::run_graph_free(&workload.blocks, split, 0.25, &mut mb_core::Noop, |_, _| {
                n += 1
            })
            .unwrap();
            black_box(n)
        })
    });
    group.bench_function("graph_free/r=0.55", |b| {
        b.iter(|| {
            let mut n = 0u64;
            pipeline::run_graph_free(&workload.blocks, split, 0.55, &mut mb_core::Noop, |_, _| {
                n += 1
            })
            .unwrap();
            black_box(n)
        })
    });

    group.bench_function("iterative_blocking/oracle", |b| {
        let oracle = OracleMatcher::new(&workload.ground_truth);
        let config = IterativeBlocking { order_by_cardinality: true, stop_after_match: true };
        b.iter(|| black_box(config.run(&workload.blocks, &oracle).executed_comparisons))
    });

    group.bench_function("reciprocal_wnp/full_pipeline", |b| {
        let pipeline = MetaBlocking::new(WeightingScheme::Js, PruningScheme::ReciprocalWnp)
            .with_block_filtering(0.8);
        b.iter(|| {
            let mut n = 0u64;
            pipeline.run(&workload.blocks, split, &mut mb_core::Noop, |_, _| n += 1).unwrap();
            black_box(n)
        })
    });

    // Comparison Propagation: the ScanCount sweep vs the literal
    // per-comparison LeCoBI formulation.
    let ctx = GraphContext::new(&workload.blocks, split);
    group.bench_function("comparison_propagation/scan", |b| {
        b.iter(|| {
            let mut n = 0u64;
            comparison_propagation(&ctx, |_, _| n += 1);
            black_box(n)
        })
    });
    group.bench_function("comparison_propagation/lecobi", |b| {
        b.iter(|| {
            let mut n = 0u64;
            comparison_propagation_lecobi(&ctx, |_, _| n += 1);
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
