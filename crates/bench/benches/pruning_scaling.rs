//! The perf-trajectory bench: every pruning scheme at 1/2/4/8 worker
//! threads, plus the raw parallel edge-weighting sweep, on the fixed
//! synthetic workload — written as machine-readable JSON so the scaling
//! behavior is tracked commit over commit.
//!
//! Output: `BENCH_pruning.json` at the repository root (override with the
//! `BENCH_OUT` environment variable). One record per (bench, scheme,
//! threads) triple with mean/median/min wall milliseconds; the file also
//! records the machine's detected core count, since speedups are physically
//! bounded by it.
//!
//! Environment knobs: `BENCH_SAMPLE_SIZE` (timed samples per cell,
//! default 5), `BENCH_OUT` (output path).

use er_bench::clean_workload;
use mb_core::filter::block_filtering;
use mb_core::weights::EdgeWeigher;
use mb_core::{GraphContext, MetaBlocking, PruningScheme, WeightingScheme};
use mb_observe::json::Json;
use std::hint::black_box;
use std::time::{Duration, Instant};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn sample_count() -> usize {
    std::env::var("BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(5)
}

/// Times `routine` after one untimed warm-up call.
fn time_samples(samples: usize, mut routine: impl FnMut()) -> Vec<Duration> {
    routine();
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed()
        })
        .collect()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One result record: mean/median/min over the samples, in milliseconds.
fn record(bench: &str, scheme: &str, threads: usize, times: &[Duration]) -> Json {
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    let total: Duration = sorted.iter().sum();
    let mut obj = Json::obj();
    obj.push("bench", Json::Str(bench.into()));
    obj.push("scheme", Json::Str(scheme.into()));
    obj.push("threads", Json::Uint(threads as u64));
    obj.push("mean_ms", Json::Num(ms(total / sorted.len() as u32)));
    obj.push("median_ms", Json::Num(ms(sorted[sorted.len() / 2])));
    obj.push("min_ms", Json::Num(ms(sorted[0])));
    obj.push("samples", Json::Uint(sorted.len() as u64));
    obj
}

fn main() {
    let samples = sample_count();
    let workload = clean_workload();
    let split = workload.collection.split();
    let filtered = block_filtering(&workload.blocks, 0.8)
        .unwrap_or_else(|e| panic!("block filtering failed: {e}"));
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("pruning-scaling: {cores} detected cores, {samples} samples per cell");

    let mut rows: Vec<Json> = Vec::new();

    // The raw parallel edge-weighting sweep (graph construction excluded).
    let ctx = GraphContext::new(&filtered, split);
    let weigher = EdgeWeigher::new(WeightingScheme::Js, &ctx);
    for threads in THREADS {
        let times = time_samples(samples, || {
            black_box(mb_core::parallel::mean_edge_weight(&ctx, &weigher, threads));
        });
        println!("edge-weighting x{threads}: min {:?}", times.iter().min().unwrap());
        rows.push(record("edge_weighting", "JS", threads, &times));
    }

    // Every pruning scheme, end to end through the pipeline.
    for pruning in PruningScheme::ALL {
        for threads in THREADS {
            let pipeline = MetaBlocking::new(WeightingScheme::Js, pruning).with_threads(threads);
            let times = time_samples(samples, || {
                let mut count = 0u64;
                pipeline
                    .run(&filtered, split, &mut mb_core::Noop, |_, _| count += 1)
                    .unwrap_or_else(|e| panic!("pipeline failed: {e}"));
                black_box(count);
            });
            println!("{} x{threads}: min {:?}", pruning.name(), times.iter().min().unwrap());
            rows.push(record("pruning", pruning.name(), threads, &times));
        }
    }

    let mut doc = Json::obj();
    doc.push("bench", Json::Str("pruning_scaling".into()));
    doc.push("workload", Json::Str("d1c-0.1 clean-clean, block-filtered 0.8".into()));
    doc.push("entities", Json::Uint(workload.collection.len() as u64));
    doc.push("detected_cores", Json::Uint(cores as u64));
    doc.push("samples_per_cell", Json::Uint(samples as u64));
    doc.push("results", Json::Arr(rows));

    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pruning.json").to_string()
    });
    std::fs::write(&path, doc.render_pretty()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");
}
