//! Tables 3–4 OTime shape: the per-scheme overhead of all eight pruning
//! schemes on the same Block-Filtered graph.
//!
//! Expected ordering (paper §6.3–6.4): edge-centric schemes are cheaper
//! than node-centric ones (one pass vs two over the neighborhoods); the
//! redefined/reciprocal pairs cost the same as each other (they differ by
//! one operator).

use er_bench::clean_workload;
use er_bench::harness::Criterion;
use er_bench::{criterion_group, criterion_main};
use mb_core::filter::block_filtering;
use mb_core::{MetaBlocking, PruningScheme, WeightingScheme};
use std::hint::black_box;

fn bench_pruning(c: &mut Criterion) {
    let workload = clean_workload();
    let split = workload.collection.split();
    let filtered = block_filtering(&workload.blocks, 0.8).unwrap();

    let mut group = c.benchmark_group("pruning");
    group.sample_size(10);
    for pruning in PruningScheme::ORIGINAL.into_iter().chain(PruningScheme::ENHANCED) {
        group.bench_function(pruning.name().replace(' ', "_"), |b| {
            let pipeline = MetaBlocking::new(WeightingScheme::Js, pruning);
            b.iter(|| {
                let mut count = 0u64;
                pipeline.run(&filtered, split, &mut mb_core::Noop, |_, _| count += 1).unwrap();
                black_box(count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
