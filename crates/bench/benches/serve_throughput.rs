//! Online-serving bench: wire round-trip latency, sustained throughput,
//! and the client-visible reload pause of a live `er serve` instance.
//!
//! The workload is the Dirty d1c-0.1 benchmark frozen into an `mb-serve`
//! snapshot (JS + CNP, Block Filtering at r = 0.8), served on an ephemeral
//! loopback port. Three measurements:
//!
//! * **round trip** — per-entity `CandidateRequest` over the wire
//!   (serialize + frame + TCP + execute + response), µs p50/p99 and
//!   sustained queries/second on one connection.
//! * **reload** — client-visible `MSG_RELOAD` duration (snapshot read +
//!   validation + generation swap), wall-ms. The swap itself happens off
//!   the serving path, so this is the *control-plane* cost, not a serving
//!   stall.
//! * **post-reload query** — the first query after a swap, which pays the
//!   connection handler's engine rebuild over the new generation.
//!
//! Output: `BENCH_serve.json` at the repository root (override with
//! `BENCH_OUT`); `validate_serve_json` checks its shape in
//! `scripts/bench.sh`.

use er_bench::dirty_workload;
use mb_core::{PipelineConfig, PruningScheme, WeightingScheme};
use mb_observe::json::Json;
use mb_serve::{CandidateRequest, Client, Server, ServerConfig, Snapshot};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn sample_count() -> usize {
    std::env::var("BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(5)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let samples = sample_count();
    let workload = dirty_workload();
    let n = workload.collection.len();
    let config = PipelineConfig {
        weighting: WeightingScheme::Js,
        pruning: PruningScheme::Cnp,
        filter_ratio: Some(0.8),
        ..PipelineConfig::default()
    };
    let snapshot = Snapshot::build(&workload.collection, config)
        .unwrap_or_else(|e| panic!("building snapshot: {e}"));
    let reload_path = std::env::temp_dir().join("er_bench_serve.mbsnap");
    snapshot.write_to(&reload_path).unwrap_or_else(|e| panic!("writing snapshot: {e}"));

    let handle = Server::start(snapshot, ServerConfig::default())
        .unwrap_or_else(|e| panic!("starting server: {e}"));
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap_or_else(|e| panic!("connecting {addr}: {e}"));
    println!("serve-throughput: {n} entities on {addr}, {samples} samples");

    // Warm up the connection and the engine's scratch state. Requests carry
    // no explicit retention, so the server resolves its snapshot default
    // (CNP top-k) — the same policy the batch pipeline froze in.
    client
        .execute(&CandidateRequest::entity(er_model::EntityId(0)))
        .unwrap_or_else(|e| panic!("warmup query: {e}"));

    // --- wire round-trip latency + throughput -------------------------------
    let mut lat_us: Vec<f64> = Vec::with_capacity(n * samples);
    let sweep = Instant::now();
    for _ in 0..samples {
        for pivot in 0..n as u32 {
            let request = CandidateRequest::entity(er_model::EntityId(pivot));
            let start = Instant::now();
            let response =
                client.execute(&request).unwrap_or_else(|e| panic!("query {pivot}: {e}"));
            black_box(&response);
            lat_us.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    let qps = lat_us.len() as f64 / sweep.elapsed().as_secs_f64();
    lat_us.sort_unstable_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    println!(
        "   round trip: p50 {p50:>8.2} us  p99 {p99:>8.2} us  {qps:>10.0} q/s  ({} queries)",
        lat_us.len()
    );
    let mut round_trip = Json::obj();
    round_trip.push("p50_us", Json::Num(p50));
    round_trip.push("p99_us", Json::Num(p99));
    round_trip.push("throughput_qps", Json::Num(qps));
    round_trip.push("queries", Json::Uint(lat_us.len() as u64));

    // --- reload pause + first post-reload query -----------------------------
    let reload_str = reload_path.to_str().unwrap_or_else(|| panic!("non-UTF-8 temp path"));
    let mut reload_times: Vec<Duration> = Vec::with_capacity(samples);
    let mut post_us: Vec<f64> = Vec::with_capacity(samples);
    for round in 0..samples {
        let start = Instant::now();
        let generation =
            client.reload(reload_str).unwrap_or_else(|e| panic!("reload {round}: {e}"));
        reload_times.push(start.elapsed());
        black_box(generation);
        let request = CandidateRequest::entity(er_model::EntityId(0));
        let start = Instant::now();
        let response =
            client.execute(&request).unwrap_or_else(|e| panic!("post-reload query {round}: {e}"));
        assert_eq!(response.generation, generation, "stale generation after reload");
        post_us.push(start.elapsed().as_secs_f64() * 1e6);
    }
    reload_times.sort_unstable();
    post_us.sort_unstable_by(|a, b| a.total_cmp(b));
    let reload_mean = reload_times.iter().sum::<Duration>() / reload_times.len() as u32;
    let post_mean = post_us.iter().sum::<f64>() / post_us.len() as f64;
    println!(
        "       reload: mean {:>8.3} ms  min {:>8.3} ms  post-reload query mean {post_mean:>8.2} us",
        ms(reload_mean),
        ms(reload_times[0])
    );
    let mut reload = Json::obj();
    reload.push("mean_ms", Json::Num(ms(reload_mean)));
    reload.push("min_ms", Json::Num(ms(reload_times[0])));
    reload.push("samples", Json::Uint(reload_times.len() as u64));
    reload.push("post_reload_query_us", Json::Num(post_mean));

    // --- drain and cross-check the server's own request accounting ----------
    let final_generation = client.shutdown().unwrap_or_else(|e| panic!("shutdown: {e}"));
    let report = handle.wait();
    let served = report.counter_total(mb_observe::Counter::RequestsServed);
    println!("     shutdown: generation {final_generation}, {served} requests served");

    let mut doc = Json::obj();
    doc.push("bench", Json::Str("serve_throughput".into()));
    doc.push("workload", Json::Str("d1c-0.1 dirty, filter 0.8, js+cnp".into()));
    doc.push("entities", Json::Uint(n as u64));
    doc.push("samples", Json::Uint(samples as u64));
    doc.push("final_generation", Json::Uint(final_generation));
    doc.push("requests_served", Json::Uint(served));
    doc.push("round_trip", round_trip);
    doc.push("reload", reload);

    let out = std::env::var("BENCH_OUT").ok().filter(|p| !p.is_empty()).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    std::fs::write(&out, doc.render_pretty()).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    std::fs::remove_file(&reload_path).ok();
    println!("wrote {out}");
}
