//! Table 1 OTime shape: building the input blocks.
//!
//! Blocking itself must be cheap relative to resolution — the paper's
//! Table 1 shows OTime of seconds against resolution times of minutes to
//! hours. This bench covers the blocking methods plus Block Purging.

use er_bench::clean_workload;
use er_bench::harness::Criterion;
use er_bench::{criterion_group, criterion_main};
use er_blocking::{
    purging, AttributeClusteringBlocking, BlockingMethod, QGramsBlocking, SortedNeighborhood,
    StandardBlocking, SuffixArraysBlocking, TokenBlocking,
};
use std::hint::black_box;

fn bench_blocking(c: &mut Criterion) {
    let workload = clean_workload();
    let collection = &workload.collection;

    let mut group = c.benchmark_group("blocking");
    group.sample_size(10);

    let methods: Vec<(&str, Box<dyn BlockingMethod>)> = vec![
        ("token", Box::new(TokenBlocking)),
        ("qgrams3", Box::new(QGramsBlocking::default())),
        ("suffix", Box::new(SuffixArraysBlocking::default())),
        ("attr_clustering", Box::new(AttributeClusteringBlocking::default())),
        ("standard", Box::new(StandardBlocking)),
        ("sorted_neighborhood", Box::new(SortedNeighborhood::default())),
    ];
    for (name, method) in &methods {
        group.bench_function(*name, |b| b.iter(|| black_box(method.build(collection))));
    }

    group.bench_function("purging/size", |b| {
        b.iter(|| {
            let mut blocks = workload.blocks.clone();
            black_box(purging::purge_by_size(&mut blocks, 0.5))
        })
    });
    group.bench_function("purging/comparisons", |b| {
        b.iter(|| {
            let mut blocks = workload.blocks.clone();
            black_box(purging::purge_by_comparisons(&mut blocks))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
