//! Incremental-delta bench: µs-scale live upserts against a loaded engine
//! versus the full rebuild they replace, plus pinned compaction.
//!
//! The workload is the Dirty d1c-0.1 benchmark (≈6.4k profiles) frozen
//! into an `mb-serve` snapshot (JS + CNP, Block Filtering at r = 0.8) and
//! served through a [`GenerationCell`]. Three measurements:
//!
//! * **upsert apply** — one [`DeltaOp::Upsert`] through
//!   [`GenerationCell::apply`]: tokenize, patch the overlay, publish the
//!   next generation. µs p50/p99 over a fresh cell per round so overlay
//!   growth does not skew the percentiles.
//! * **query after upsert** — the first query for the entity the upsert
//!   just appended, through an engine pinned on the new generation; plus
//!   the combined applied-and-queryable figure the acceptance bar names.
//! * **rebuild path** — the write cycle a delta op replaces: re-read the
//!   CSV bundle, [`Snapshot::build`], persist, reload zero-copy, swap into
//!   the cell, answer the first query. The headline speedup divides this
//!   by the apply p50 — rebuild-per-write versus delta-per-write.
//! * **compaction** — folding the accumulated op log back into a clean
//!   CSR arena (merge + rebuild), wall-ms, against the from-scratch
//!   [`Snapshot::build`] a delta-less engine would need for *every* write.
//!   The compacted image must be bit-identical to that fresh build.
//!
//! Output: `BENCH_delta.json` at the repository root (override with
//! `BENCH_OUT`); `validate_delta_json` checks its shape — including the
//! ≥1000× apply-vs-rebuild-path bar — in `scripts/bench.sh`.

use er_bench::dirty_workload;
use mb_core::{PipelineConfig, PruningScheme, Retention, WeightingScheme};
use mb_observe::json::Json;
use mb_observe::Noop;
use mb_serve::{
    merge_ops, CandidateRequest, DeltaOp, GenerationCell, QueryEngine, Snapshot, SnapshotView,
    APPEND,
};
use std::hint::black_box;
use std::time::Instant;

fn sample_count() -> usize {
    std::env::var("BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(5)
}

fn pct(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn main() {
    let samples = sample_count();
    let workload = dirty_workload();
    let n = workload.collection.len();
    let config = PipelineConfig {
        weighting: WeightingScheme::Js,
        pruning: PruningScheme::Cnp,
        filter_ratio: Some(0.8),
        ..PipelineConfig::default()
    };
    let snapshot = Snapshot::build(&workload.collection, config)
        .unwrap_or_else(|e| panic!("building snapshot: {e}"));
    println!("delta-latency: {n} entities, {samples} rounds");

    // The newcomers recycle indexed profiles' text under fresh URIs, so
    // every upsert hits real postings instead of dead singleton tokens.
    let donors: Vec<_> = workload.collection.profiles().iter().take(64).cloned().collect();
    let newcomer = |round: usize, i: usize| {
        let donor = &donors[(round * 31 + i) % donors.len()];
        let mut p = er_model::EntityProfile::new(format!("delta-{round}-{i}"));
        for a in donor.attributes() {
            p = p.with(a.name.clone(), a.value.clone());
        }
        p
    };

    // --- rebuild baselines: what each write costs without deltas ------------
    //
    // `rebuild_ms` is the in-memory `Snapshot::build` alone (the floor the
    // compaction figure is compared against). `rebuild_path_ms` is the full
    // write path a delta op replaces: re-read the CSV bundle, rebuild the
    // index, persist it, reload it zero-copy into the serving cell, and
    // answer the first query — i.e. the `er snapshot build` + reload cycle.
    let mut rebuild_ms = f64::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        let rebuilt = Snapshot::build(&workload.collection, config)
            .unwrap_or_else(|e| panic!("rebuild: {e}"));
        rebuild_ms = rebuild_ms.min(start.elapsed().as_secs_f64() * 1e3);
        black_box(&rebuilt);
    }

    let dir = std::env::temp_dir().join(format!("er-delta-bench-{}", std::process::id()));
    er_io::bundle::save(&dir, &workload.collection, &workload.ground_truth)
        .unwrap_or_else(|e| panic!("staging bundle: {e}"));
    let snap_path = dir.join("rebuild.snap");
    let mut rebuild_path_ms = f64::MAX;
    for _ in 0..samples {
        let cell = GenerationCell::new(snapshot.clone())
            .unwrap_or_else(|e| panic!("loading generation: {e}"));
        let start = Instant::now();
        let bundle = er_io::bundle::load(&dir).unwrap_or_else(|e| panic!("bundle load: {e}"));
        let rebuilt =
            Snapshot::build(&bundle.collection, config).unwrap_or_else(|e| panic!("rebuild: {e}"));
        rebuilt.write_to(&snap_path).unwrap_or_else(|e| panic!("persist: {e}"));
        let view = SnapshotView::read_from(&snap_path, &mut Noop)
            .unwrap_or_else(|e| panic!("reload: {e}"));
        cell.swap(view).unwrap_or_else(|e| panic!("swap: {e}"));
        let generation = cell.load();
        let mut engine = QueryEngine::from_generation(&generation);
        let request =
            CandidateRequest::entity(er_model::EntityId(0)).with_retention(Retention::TopK(10));
        let response = engine.execute(&request, &mut Noop).unwrap_or_else(|e| panic!("query: {e}"));
        black_box(&response);
        rebuild_path_ms = rebuild_path_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- upsert apply + query-after-upsert percentiles ----------------------
    const OPS_PER_ROUND: usize = 64;
    let mut apply_us: Vec<f64> = Vec::with_capacity(samples * OPS_PER_ROUND);
    let mut query_us: Vec<f64> = Vec::with_capacity(samples * OPS_PER_ROUND);
    let mut total_us: Vec<f64> = Vec::with_capacity(samples * OPS_PER_ROUND);
    for round in 0..samples {
        let cell = GenerationCell::new(snapshot.clone())
            .unwrap_or_else(|e| panic!("loading generation: {e}"));
        for i in 0..OPS_PER_ROUND {
            let profile = newcomer(round, i);
            let start = Instant::now();
            let applied = cell
                .apply(DeltaOp::Upsert { id: APPEND, profile }, &mut Noop)
                .unwrap_or_else(|e| panic!("apply {round}/{i}: {e}"));
            let applied_at = start.elapsed().as_secs_f64() * 1e6;
            let generation = cell.load();
            let mut engine = QueryEngine::from_generation(&generation);
            let request = CandidateRequest::entity(er_model::EntityId(applied.id))
                .with_retention(Retention::TopK(10));
            let qstart = Instant::now();
            let response = engine
                .execute(&request, &mut Noop)
                .unwrap_or_else(|e| panic!("query {round}/{i}: {e}"));
            let queried_at = qstart.elapsed().as_secs_f64() * 1e6;
            black_box(&response);
            apply_us.push(applied_at);
            query_us.push(queried_at);
            total_us.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    for v in [&mut apply_us, &mut query_us, &mut total_us] {
        v.sort_unstable_by(|a, b| a.total_cmp(b));
    }
    // The acceptance bar compares the cost of *making a write visible*: one
    // delta apply versus the load→build→persist→reload cycle it replaces.
    let speedup = rebuild_path_ms * 1e3 / pct(&apply_us, 0.50);
    println!(
        "       upsert: apply p50 {:>8.2} us  p99 {:>8.2} us",
        pct(&apply_us, 0.50),
        pct(&apply_us, 0.99)
    );
    println!(
        "  query-after: p50 {:>8.2} us  p99 {:>8.2} us  (applied+queryable p50 {:>8.2} us)",
        pct(&query_us, 0.50),
        pct(&query_us, 0.99),
        pct(&total_us, 0.50)
    );
    println!(
        "      rebuild: {rebuild_ms:>8.2} ms build-only, {rebuild_path_ms:>8.2} ms full path  ->  \
         {speedup:>8.0}x per-write speedup"
    );

    // --- pinned compaction vs the fresh build it must reproduce -------------
    let cell =
        GenerationCell::new(snapshot.clone()).unwrap_or_else(|e| panic!("loading generation: {e}"));
    for i in 0..OPS_PER_ROUND {
        cell.apply(DeltaOp::Upsert { id: APPEND, profile: newcomer(samples, i) }, &mut Noop)
            .unwrap_or_else(|e| panic!("compaction seed {i}: {e}"));
    }
    cell.apply(DeltaOp::Delete { id: 0 }, &mut Noop)
        .unwrap_or_else(|e| panic!("compaction tombstone: {e}"));
    let generation = cell.load();
    let ops = generation.overlay().map(|o| o.ops()).unwrap_or_default();
    let start = Instant::now();
    let mut merged = workload.collection.clone();
    merge_ops(&mut merged, &ops).unwrap_or_else(|e| panic!("merge: {e}"));
    let compacted =
        Snapshot::build(&merged, config).unwrap_or_else(|e| panic!("compaction build: {e}"));
    let compact_ms = start.elapsed().as_secs_f64() * 1e3;
    let fresh = Snapshot::build(&merged, config).unwrap_or_else(|e| panic!("fresh build: {e}"));
    let bit_identical = compacted.to_bytes() == fresh.to_bytes();
    assert!(bit_identical, "compacted snapshot diverged from a from-scratch rebuild");
    println!(
        "   compaction: {compact_ms:>8.2} ms over {} ops  (bit-identical to fresh build)",
        ops.len()
    );

    let mut upsert = Json::obj();
    upsert.push("apply_p50_us", Json::Num(pct(&apply_us, 0.50)));
    upsert.push("apply_p99_us", Json::Num(pct(&apply_us, 0.99)));
    upsert.push("query_p50_us", Json::Num(pct(&query_us, 0.50)));
    upsert.push("query_p99_us", Json::Num(pct(&query_us, 0.99)));
    upsert.push("applied_queryable_p50_us", Json::Num(pct(&total_us, 0.50)));
    upsert.push("applied_queryable_p99_us", Json::Num(pct(&total_us, 0.99)));
    upsert.push("ops", Json::Uint(apply_us.len() as u64));

    let mut compaction = Json::obj();
    compaction.push("compact_ms", Json::Num(compact_ms));
    compaction.push("rebuild_ms", Json::Num(rebuild_ms));
    compaction.push("rebuild_path_ms", Json::Num(rebuild_path_ms));
    compaction.push("ops_folded", Json::Uint(ops.len() as u64));
    compaction.push("bit_identical", Json::Bool(bit_identical));

    let mut doc = Json::obj();
    doc.push("bench", Json::Str("delta_latency".into()));
    doc.push("workload", Json::Str("d1c-0.1 dirty, filter 0.8, js+cnp".into()));
    doc.push("entities", Json::Uint(n as u64));
    doc.push("samples", Json::Uint(samples as u64));
    doc.push("upsert", upsert);
    doc.push("compaction", compaction);
    doc.push("speedup_vs_rebuild", Json::Num(speedup));

    let out = std::env::var("BENCH_OUT").ok().filter(|p| !p.is_empty()).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_delta.json").to_string()
    });
    std::fs::write(&out, doc.render_pretty()).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
