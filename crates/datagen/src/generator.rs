//! The dataset generator.

use crate::config::{DatasetConfig, NoiseConfig, SideConfig};
use crate::rng::SmallRng;
use crate::words::{typo, word};
use crate::zipf::Zipf;
use er_model::error::{Error, Result};
use er_model::{EntityCollection, EntityId, EntityProfile, GroundTruth};

/// A generated benchmark: the entity collection plus its ground truth.
#[derive(Debug)]
pub struct GeneratedDataset {
    /// The Clean-Clean (or, after [`GeneratedDataset::into_dirty`], Dirty)
    /// entity collection.
    pub collection: EntityCollection,
    /// The duplicate pairs.
    pub ground_truth: GroundTruth,
}

impl GeneratedDataset {
    /// Converts the Clean-Clean benchmark into the corresponding Dirty one,
    /// as the paper derives DxD from DxC. Entity ids are preserved, so the
    /// ground truth remains valid.
    pub fn into_dirty(self) -> GeneratedDataset {
        GeneratedDataset {
            collection: self.collection.into_dirty(),
            ground_truth: self.ground_truth,
        }
    }
}

/// Generates a synthetic Clean-Clean benchmark from a configuration.
///
/// # Errors
/// [`er_model::Error::InvalidConfig`] if the configuration fails
/// [`DatasetConfig::validate`].
pub fn generate(config: &DatasetConfig) -> Result<GeneratedDataset> {
    config.validate().map_err(Error::InvalidConfig)?;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.object.vocab_size, config.object.zipf_exponent);

    // Underlying real-world objects: the matched ones first (shared by both
    // sides), then each side's unmatched ones.
    let matched = config.matched_pairs;
    let extra1 = config.side1.size - matched;
    let extra2 = config.side2.size - matched;
    let sample_object = |rng: &mut SmallRng| -> Vec<u64> {
        let span = config.object.tokens_mean.max(2);
        // tokens_mean ± 25%, at least 2 so a duplicate can survive one drop.
        let lo = (span * 3 / 4).max(2);
        let hi = (span * 5 / 4).max(lo + 1);
        let count = rng.gen_range_inclusive(lo, hi);
        (0..count).map(|_| zipf.sample(rng) as u64).collect()
    };
    let objects: Vec<Vec<u64>> =
        (0..matched + extra1 + extra2).map(|_| sample_object(&mut rng)).collect();

    // Side 1: matched objects 0..matched, then its own extras.
    let mut e1 = Vec::with_capacity(config.side1.size);
    for (n, obj) in objects[..matched].iter().chain(&objects[matched..matched + extra1]).enumerate()
    {
        e1.push(profile_from_object(&format!("A{n}"), obj, &config.side1, &zipf, &mut rng));
    }
    // Side 2: the same matched objects, then its own extras.
    let mut e2 = Vec::with_capacity(config.side2.size);
    for (n, obj) in objects[..matched].iter().chain(&objects[matched + extra1..]).enumerate() {
        e2.push(profile_from_object(&format!("B{n}"), obj, &config.side2, &zipf, &mut rng));
    }

    let n1 = e1.len() as u32;
    let collection = EntityCollection::clean_clean(e1, e2);
    let ground_truth = GroundTruth::from_pairs((0..matched).map(|i| {
        let id = EntityId::from_index(i);
        (id, EntityId(n1 + id.0))
    }));
    Ok(GeneratedDataset { collection, ground_truth })
}

/// Derives one side's profile from an object's token bag: apply the noise
/// model, partition the surviving tokens into attribute values, and name the
/// attributes from the side's pool.
fn profile_from_object(
    uri: &str,
    object: &[u64],
    side: &SideConfig,
    zipf: &Zipf,
    rng: &mut SmallRng,
) -> EntityProfile {
    let tokens = apply_noise(object, &side.noise, zipf, rng);

    // Number of name-value pairs: attributes ± 1, at least 1, and no more
    // than the tokens available (an attribute needs a value).
    let target = side.attributes;
    let lo = target.saturating_sub(1).max(1);
    let hi = target + 1;
    let attrs = rng.gen_range_inclusive(lo, hi).min(tokens.len()).max(1);

    // Attribute names: drawn from the side pool; `a` prefix for side pools
    // is unnecessary — pools are disjoint across sides because heterogeneous
    // sources rarely agree on names (and schema-agnostic methods must not
    // care).
    let mut profile = EntityProfile::new(uri);
    let per_attr = tokens.len().div_ceil(attrs).max(1);
    for chunk in tokens.chunks(per_attr) {
        let name_id = rng.gen_below(side.attr_name_pool as u64);
        profile.add(format!("{}_{}", word(name_id), name_id), chunk.join(" "));
    }
    profile
}

/// The noise pipeline: drop, typo, extend. Guarantees at least one token.
fn apply_noise(
    object: &[u64],
    noise: &NoiseConfig,
    zipf: &Zipf,
    rng: &mut SmallRng,
) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(object.len());
    for &t in object {
        if rng.gen_bool(noise.token_drop) {
            continue;
        }
        let w = word(t);
        if rng.gen_bool(noise.token_typo) {
            out.push(typo(&w, rng));
        } else {
            out.push(w);
        }
    }
    if out.is_empty() {
        // Never emit a token-free profile: keep one un-dropped token.
        out.push(word(object[0]));
    }
    // Spurious additions: Poisson(extra_tokens) via Knuth's method (the
    // expectation is tiny, so the loop is short).
    if noise.extra_tokens > 0.0 {
        let l = (-noise.extra_tokens).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen_f64();
            if p <= l {
                break;
            }
            k += 1;
            if k > 64 {
                break;
            }
        }
        for _ in 0..k {
            out.push(word(zipf.sample(rng) as u64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NoiseConfig, ObjectConfig, SideConfig};
    use er_blocking::{BlockingMethod, TokenBlocking};
    use er_model::measures;
    use er_model::ErKind;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            seed: 42,
            matched_pairs: 200,
            side1: SideConfig {
                size: 300,
                attributes: 3,
                attr_name_pool: 4,
                noise: NoiseConfig { token_drop: 0.15, token_typo: 0.05, extra_tokens: 0.5 },
            },
            side2: SideConfig {
                size: 400,
                attributes: 5,
                attr_name_pool: 7,
                noise: NoiseConfig { token_drop: 0.1, token_typo: 0.05, extra_tokens: 1.0 },
            },
            object: ObjectConfig { vocab_size: 3_000, zipf_exponent: 1.0, tokens_mean: 10 },
        }
    }

    #[test]
    fn shape_matches_config() {
        let d = generate(&small_config()).unwrap();
        assert_eq!(d.collection.kind(), ErKind::CleanClean);
        assert_eq!(d.collection.len(), 700);
        assert_eq!(d.collection.sides(), (300, 400));
        assert_eq!(d.ground_truth.len(), 200);
        // Ground-truth pairs cross the two sides.
        for c in d.ground_truth.pairs() {
            assert!(c.a.idx() < 300 && c.b.idx() >= 300);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_config()).unwrap();
        let b = generate(&small_config()).unwrap();
        assert_eq!(a.collection.profiles().len(), b.collection.profiles().len());
        for (x, y) in a.collection.profiles().iter().zip(b.collection.profiles()) {
            assert_eq!(x, y);
        }
        let mut c = small_config();
        c.seed = 43;
        let d = generate(&c).unwrap();
        assert_ne!(
            a.collection.profiles()[0].attributes(),
            d.collection.profiles()[0].attributes()
        );
    }

    #[test]
    fn token_blocking_recall_is_high_precision_low() {
        let d = generate(&small_config()).unwrap();
        let blocks = TokenBlocking.build(&d.collection);
        let detected = measures::detected_duplicates_in(&blocks, &d.ground_truth);
        let pc = measures::pairs_completeness(detected, d.ground_truth.len());
        let pq = measures::pairs_quality(detected, blocks.total_comparisons());
        // The paper's Table 1(a) shape: near-perfect recall, precision far
        // below 1 (the small synthetic scale keeps PQ higher than the
        // real 10⁻³–10⁻⁵ range, but the ordering PC >> PQ must hold).
        assert!(pc > 0.95, "pc={pc}");
        assert!(pq < 0.1, "pq={pq}");
    }

    #[test]
    fn profiles_have_requested_attribute_counts() {
        let d = generate(&small_config()).unwrap();
        let (side1_names, side2_names) = d.collection.distinct_attribute_names();
        assert!(side1_names <= 4);
        assert!(side2_names <= 7);
        for (id, p) in d.collection.iter() {
            let expected = if d.collection.is_second(id) { 5 + 1 } else { 3 + 1 };
            assert!(!p.is_empty() && p.len() <= expected, "{} has {}", p.uri(), p.len());
        }
    }

    #[test]
    fn into_dirty_preserves_ground_truth() {
        let d = generate(&small_config()).unwrap().into_dirty();
        assert_eq!(d.collection.kind(), ErKind::Dirty);
        assert_eq!(d.ground_truth.len(), 200);
        let blocks = TokenBlocking.build(&d.collection);
        let detected = measures::detected_duplicates_in(&blocks, &d.ground_truth);
        assert!(measures::pairs_completeness(detected, 200) > 0.95);
    }

    #[test]
    fn zero_noise_duplicates_share_all_tokens() {
        let mut c = small_config();
        c.side1.noise = NoiseConfig::NONE;
        c.side2.noise = NoiseConfig::NONE;
        let d = generate(&c).unwrap();
        let sets = er_model::matching::TokenSets::build(&d.collection);
        for pair in d.ground_truth.pairs() {
            assert!((sets.jaccard(pair.a, pair.b) - 1.0).abs() < 1e-12, "{:?} differs", pair);
        }
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut c = small_config();
        c.matched_pairs = 10_000;
        let err = generate(&c).unwrap_err();
        assert!(matches!(err, er_model::Error::InvalidConfig(_)), "{err:?}");
        assert!(err.to_string().contains("matched_pairs"), "{err}");
    }
}
