//! A Zipf-distributed sampler over `0..n`.
//!
//! Token frequencies in real text are Zipfian, and the block-size
//! distribution of Token Blocking inherits that shape — which is exactly
//! what stresses meta-blocking (a handful of huge blocks, a long tail of
//! tiny ones). This is a small inverse-CDF implementation: `O(n)` setup, `O(log n)`
//! per sample, deterministic for a fixed RNG.

use crate::rng::SmallRng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution; `cdf[k]` = P(rank ≤ k).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// If `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (cannot happen via `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen_f64();
        // partition_point returns the first index with cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Under Zipf(1.0) over 1000 ranks, rank 0 carries ~13% of the mass;
        // rank 1 about half of that.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 10_000);
        // A deep-tail rank is rare.
        assert!(counts[900] < counts[0] / 20);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "{counts:?}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let z = Zipf::new(50, 1.2);
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panic() {
        Zipf::new(0, 1.0);
    }
}
