//! Dataset-generation configuration.

/// Noise applied when deriving one side's profile from its underlying
/// real-world object.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Probability that each object token is omitted from the profile.
    /// Also the lever that makes one side's profiles terse (DBLP) and the
    /// other's verbose (Scholar).
    pub token_drop: f64,
    /// Probability that a kept token is corrupted by a character-level typo.
    pub token_typo: f64,
    /// Expected number of spurious vocabulary tokens appended to the
    /// profile (crawl noise, boilerplate).
    pub extra_tokens: f64,
}

impl NoiseConfig {
    /// No distortion at all — duplicates become verbatim copies.
    pub const NONE: NoiseConfig =
        NoiseConfig { token_drop: 0.0, token_typo: 0.0, extra_tokens: 0.0 };

    /// Validates the probability fields.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("token_drop", self.token_drop), ("token_typo", self.token_typo)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be a probability, got {v}"));
            }
        }
        if self.extra_tokens < 0.0 {
            return Err(format!("extra_tokens must be non-negative, got {}", self.extra_tokens));
        }
        Ok(())
    }
}

/// Shape of one collection (one "side" of a Clean-Clean task).
#[derive(Debug, Clone, Copy)]
pub struct SideConfig {
    /// Number of profiles, `|E₁|` or `|E₂|`. Must be at least
    /// [`DatasetConfig::matched_pairs`].
    pub size: usize,
    /// Mean number of name–value pairs per profile (`|p̄|` of Table 2).
    pub attributes: usize,
    /// Number of distinct attribute names this side draws from (`|N|` of
    /// Table 2). Tens of thousands model the Wikipedia-infobox schema
    /// explosion.
    pub attr_name_pool: usize,
    /// Per-side value noise.
    pub noise: NoiseConfig,
}

/// Shape of the underlying real-world objects shared by duplicate profiles.
#[derive(Debug, Clone, Copy)]
pub struct ObjectConfig {
    /// Vocabulary size the object tokens are drawn from.
    pub vocab_size: usize,
    /// Zipf exponent of the token distribution (≈1.0 for natural text).
    pub zipf_exponent: f64,
    /// Mean number of tokens per object (before per-side noise).
    pub tokens_mean: usize,
}

/// Full configuration of a synthetic Clean-Clean benchmark.
///
/// The derived Dirty benchmark is obtained with
/// [`crate::GeneratedDataset::into_dirty`], exactly as the paper merges
/// DxC into DxD.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// RNG seed; every byte of the dataset is a function of it.
    pub seed: u64,
    /// Number of duplicate pairs, `|D(E)|`.
    pub matched_pairs: usize,
    /// First collection.
    pub side1: SideConfig,
    /// Second collection.
    pub side2: SideConfig,
    /// Underlying-object model.
    pub object: ObjectConfig,
}

impl DatasetConfig {
    /// Validates structural constraints before generation.
    pub fn validate(&self) -> Result<(), String> {
        if self.matched_pairs > self.side1.size || self.matched_pairs > self.side2.size {
            return Err(format!(
                "matched_pairs ({}) exceeds a side size ({}, {})",
                self.matched_pairs, self.side1.size, self.side2.size
            ));
        }
        for (label, side) in [("side1", &self.side1), ("side2", &self.side2)] {
            if side.attributes == 0 {
                return Err(format!("{label}.attributes must be positive"));
            }
            if side.attr_name_pool == 0 {
                return Err(format!("{label}.attr_name_pool must be positive"));
            }
            side.noise.validate().map_err(|e| format!("{label}: {e}"))?;
        }
        if self.object.vocab_size == 0 {
            return Err("object.vocab_size must be positive".into());
        }
        if self.object.tokens_mean == 0 {
            return Err("object.tokens_mean must be positive".into());
        }
        if !(self.object.zipf_exponent.is_finite() && self.object.zipf_exponent >= 0.0) {
            return Err("object.zipf_exponent must be finite and non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> DatasetConfig {
        DatasetConfig {
            seed: 1,
            matched_pairs: 10,
            side1: SideConfig {
                size: 20,
                attributes: 3,
                attr_name_pool: 3,
                noise: NoiseConfig::NONE,
            },
            side2: SideConfig {
                size: 30,
                attributes: 4,
                attr_name_pool: 8,
                noise: NoiseConfig { token_drop: 0.1, token_typo: 0.05, extra_tokens: 0.5 },
            },
            object: ObjectConfig { vocab_size: 1000, zipf_exponent: 1.0, tokens_mean: 8 },
        }
    }

    #[test]
    fn valid_config_passes() {
        assert!(valid().validate().is_ok());
    }

    #[test]
    fn rejects_excess_matched_pairs() {
        let mut c = valid();
        c.matched_pairs = 25;
        assert!(c.validate().unwrap_err().contains("matched_pairs"));
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut c = valid();
        c.side2.noise.token_drop = 1.5;
        assert!(c.validate().is_err());
        let mut c = valid();
        c.side1.noise.extra_tokens = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_degenerate_shapes() {
        let mut c = valid();
        c.side1.attributes = 0;
        assert!(c.validate().is_err());
        let mut c = valid();
        c.object.vocab_size = 0;
        assert!(c.validate().is_err());
        let mut c = valid();
        c.object.zipf_exponent = f64::NAN;
        assert!(c.validate().is_err());
    }
}
