//! Deterministic pseudo-word generation.
//!
//! Token *strings* matter to the tokenizer and to q-gram/suffix blocking, so
//! synthetic tokens are pronounceable syllable words rather than `tok123`:
//! distinct ids map to distinct words, words of nearby ids share no special
//! structure, and a typo on a word yields a string that is almost surely not
//! another vocabulary word (exactly how a real typo behaves under Token
//! Blocking).

use crate::rng::SmallRng;

const CONSONANTS: [char; 14] =
    ['b', 'd', 'f', 'g', 'k', 'l', 'm', 'n', 'p', 'r', 's', 't', 'v', 'z'];
const VOWELS: [char; 5] = ['a', 'e', 'i', 'o', 'u'];
const SYLLABLES: usize = CONSONANTS.len() * VOWELS.len(); // 70

/// The unique pseudo-word for id `i`: base-70 syllable expansion, minimum
/// two syllables (so every word survives tokenization and q-gram extraction).
///
/// ```
/// assert_eq!(er_datagen::words::word(0), "baba");
/// assert_ne!(er_datagen::words::word(1), er_datagen::words::word(70));
/// ```
pub fn word(i: u64) -> String {
    let mut syllables = Vec::new();
    let mut v = i;
    loop {
        syllables.push((v % SYLLABLES as u64) as usize);
        v /= SYLLABLES as u64;
        if v == 0 {
            break;
        }
    }
    while syllables.len() < 2 {
        syllables.push(0);
    }
    let mut out = String::with_capacity(syllables.len() * 2);
    for &s in syllables.iter().rev() {
        out.push(CONSONANTS[s / VOWELS.len()]);
        out.push(VOWELS[s % VOWELS.len()]);
    }
    out
}

/// Applies one random character-level edit (substitution, deletion or
/// duplication) to a word — the typo model of the noise pipeline.
pub fn typo(w: &str, rng: &mut SmallRng) -> String {
    let chars: Vec<char> = w.chars().collect();
    if chars.is_empty() {
        return String::from("x");
    }
    let pos = rng.gen_range(0, chars.len());
    let mut out = String::with_capacity(w.len() + 1);
    match rng.gen_below(3) {
        0 => {
            // Substitute with a random letter.
            for (i, &c) in chars.iter().enumerate() {
                if i == pos {
                    out.push(CONSONANTS[rng.gen_range(0, CONSONANTS.len())]);
                } else {
                    out.push(c);
                }
            }
        }
        1 if chars.len() > 1 => {
            // Delete.
            for (i, &c) in chars.iter().enumerate() {
                if i != pos {
                    out.push(c);
                }
            }
        }
        _ => {
            // Duplicate.
            for (i, &c) in chars.iter().enumerate() {
                out.push(c);
                if i == pos {
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique_and_lowercase() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let w = word(i);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 4);
            assert!(seen.insert(w), "collision at {i}");
        }
    }

    #[test]
    fn words_survive_tokenization_unchanged() {
        for i in [0u64, 1, 69, 70, 4900, 343_000] {
            let w = word(i);
            let toks: Vec<String> = er_model::tokenize::tokens(&w).collect();
            assert_eq!(toks, std::slice::from_ref(&w));
        }
    }

    #[test]
    fn typo_changes_the_word() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut changed = 0;
        for i in 0..100u64 {
            let w = word(i);
            let t = typo(&w, &mut rng);
            if t != w {
                changed += 1;
            }
            assert!(!t.is_empty());
        }
        // Substitution can pick the same letter, but rarely.
        assert!(changed > 90);
    }

    #[test]
    fn typo_on_empty_is_safe() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert_eq!(typo("", &mut rng), "x");
    }
}
