//! # er-datagen — synthetic heterogeneous ER benchmarks
//!
//! The paper evaluates on three real-world Clean-Clean datasets
//! (DBLP–Google Scholar, IMDB–DBpedia, Wikipedia infobox snapshots) and
//! their Dirty derivatives. Those corpora are not redistributable, so this
//! crate generates synthetic stand-ins that reproduce the *structural*
//! properties meta-blocking is sensitive to:
//!
//! * **Zipfian token frequencies** — a few tokens are shared by thousands of
//!   profiles (the oversized blocks Block Purging removes; the noisy edges
//!   Block Filtering prunes) while most tokens are rare (the small,
//!   discriminative blocks that carry the duplicate signal);
//! * **schema heterogeneity** — the two sides use disjoint attribute-name
//!   pools, optionally with tens of thousands of names (the Wikipedia
//!   preset), so only schema-agnostic methods work;
//! * **noisy duplicates** — a matching pair shares the token bag of one
//!   underlying real-world object, distorted per side by token drops, typos
//!   and spurious additions; recall of Token Blocking stays near-perfect
//!   while precision stays far below 0.01, as in Table 1(a);
//! * **asymmetric sides** — profile counts and profile sizes per collection
//!   can differ wildly (DBLP profiles are terse, Scholar profiles verbose).
//!
//! Every dataset is a deterministic function of its seed. See
//! [`presets`] for the six paper-equivalent configurations and
//! [`DatasetConfig`] for custom workloads.

#![warn(missing_docs)]

mod config;
mod generator;
pub mod presets;
pub mod rng;
pub mod words;
pub mod zipf;

pub use config::{DatasetConfig, NoiseConfig, ObjectConfig, SideConfig};
pub use generator::{generate, GeneratedDataset};
