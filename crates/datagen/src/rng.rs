//! A small, deterministic, std-only pseudo-random number generator.
//!
//! The workspace builds offline, so the `rand` crate is not available; this
//! module provides the tiny slice of its API the generators need. The engine
//! is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` used on 64-bit targets, chosen here for
//! the same reasons: excellent statistical quality for simulation workloads,
//! four words of state, and a few arithmetic ops per draw.
//!
//! Not cryptographically secure; every consumer in this workspace wants
//! reproducibility, not unpredictability.

/// A fast deterministic PRNG (xoshiro256++), seedable from a single `u64`.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose entire stream is a function of `seed`.
    ///
    /// The four state words are drawn from a SplitMix64 sequence, which
    /// guarantees a non-zero state for every seed (all-zero state is the
    /// one fixed point xoshiro cannot leave).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, from the top 53 bits of one draw.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's multiply-shift reduction
    /// (with rejection to remove the modulo bias).
    ///
    /// # Panics
    /// If `bound == 0`.
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below requires a positive bound");
        // Widening multiply: the high word is uniform in [0, bound) once
        // low-word values inside the biased zone are rejected.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// If the range is empty.
    #[inline]
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_below((hi - lo) as u64) as usize
    }

    /// A uniform `usize` in `[lo, hi]`.
    ///
    /// # Panics
    /// If `lo > hi`.
    #[inline]
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.gen_below((hi - lo) as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SmallRng::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        // Mean of 10k uniform draws is near 0.5.
        assert!((acc / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_are_respected_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0, 10)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "{counts:?}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(rng.gen_range_inclusive(7, 7), 7);
        assert_eq!(rng.gen_range(7, 8), 7);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as i64 - 25_000).abs() < 1_500, "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn zero_bound_panics() {
        SmallRng::seed_from_u64(6).gen_below(0);
    }
}
