//! Paper-equivalent dataset presets.
//!
//! Each preset mirrors one of the paper's Clean-Clean benchmarks (Table 2)
//! structurally: side sizes and their ratio, duplicate count, attribute
//! counts per side, profile-size asymmetry and schema heterogeneity. The
//! Dirty variants (D1D/D2D/D3D) are derived with
//! [`crate::GeneratedDataset::into_dirty`], exactly as the paper merges the
//! clean collections.
//!
//! `d3c` accepts a scale in `(0, 1]` because the real D3C (1.19M × 2.16M
//! profiles) exists to demonstrate scalability; experiments default to a few
//! percent of it and the benchmark harness scales with `MB_SCALE`.

use crate::config::{DatasetConfig, NoiseConfig, ObjectConfig, SideConfig};
use crate::generator::{generate, GeneratedDataset};

/// D1C-like: bibliographic linkage (DBLP × Google Scholar).
///
/// Small, clean side 1 (2,516 profiles, 4 attributes) against a large,
/// noisy side 2 (61,353 profiles) with only 2,308 true matches — most of
/// side 2 matches nothing, as in the original.
pub fn d1c(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        matched_pairs: 2_308,
        side1: SideConfig {
            size: 2_516,
            attributes: 4,
            attr_name_pool: 4,
            noise: NoiseConfig { token_drop: 0.10, token_typo: 0.03, extra_tokens: 0.3 },
        },
        side2: SideConfig {
            size: 61_353,
            attributes: 4,
            attr_name_pool: 4,
            noise: NoiseConfig { token_drop: 0.25, token_typo: 0.05, extra_tokens: 0.5 },
        },
        object: ObjectConfig { vocab_size: 120_000, zipf_exponent: 0.8, tokens_mean: 9 },
    }
}

/// D2C-like: movie linkage (IMDB × DBpedia).
///
/// Comparable side sizes (27,615 × 23,182) with 22,863 matches — almost
/// every profile has a counterpart — and extreme profile-size asymmetry
/// (mean 5.6 vs 35.2 name-value pairs), which is what drives the original's
/// very high BPE (≈28) and dense blocking graph.
pub fn d2c(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        matched_pairs: 22_863,
        side1: SideConfig {
            size: 27_615,
            attributes: 5,
            attr_name_pool: 4,
            // Side 1 keeps a fraction of the object's tokens: terse records.
            noise: NoiseConfig { token_drop: 0.65, token_typo: 0.03, extra_tokens: 0.3 },
        },
        side2: SideConfig {
            size: 23_182,
            attributes: 20,
            attr_name_pool: 7,
            // Side 2 keeps nearly everything: verbose records.
            noise: NoiseConfig { token_drop: 0.05, token_typo: 0.03, extra_tokens: 2.0 },
        },
        object: ObjectConfig { vocab_size: 400_000, zipf_exponent: 0.8, tokens_mean: 34 },
    }
}

/// D3C-like: Wikipedia infobox snapshots, scaled by `scale ∈ (0, 1]`.
///
/// Millions of profiles, tens of thousands of distinct attribute names and
/// mid-sized profiles on both sides. At `scale = 1.0` this reproduces the
/// original's 1.19M × 2.16M shape; the default experiments use a few
/// percent.
///
/// # Panics
/// If `scale` is outside `(0, 1]`.
pub fn d3c(seed: u64, scale: f64) -> DatasetConfig {
    assert!(scale > 0.0 && scale <= 1.0, "scale must lie in (0, 1], got {scale}");
    let s = |n: usize| ((n as f64 * scale).round() as usize).max(1);
    DatasetConfig {
        seed,
        matched_pairs: s(892_579),
        side1: SideConfig {
            size: s(1_190_733),
            attributes: 14,
            attr_name_pool: s(30_688).max(30),
            noise: NoiseConfig { token_drop: 0.20, token_typo: 0.04, extra_tokens: 1.0 },
        },
        side2: SideConfig {
            size: s(2_164_040),
            attributes: 16,
            attr_name_pool: s(52_489).max(50),
            noise: NoiseConfig { token_drop: 0.15, token_typo: 0.04, extra_tokens: 1.0 },
        },
        object: ObjectConfig {
            vocab_size: s(4_000_000).max(20_000),
            zipf_exponent: 0.8,
            tokens_mean: 18,
        },
    }
}

/// XL: the out-of-core / zero-copy stress preset — 1.05 million profiles
/// (420,000 × 630,000) with 300,000 matched pairs.
///
/// Tuned so a snapshot build is posting-bound rather than vocabulary-bound:
/// short profiles (7 tokens per object, light extra-token noise) over a
/// 600,000-token vocabulary give ≈9–10M `(token, entity)` postings but a
/// vocabulary that still fits comfortably in memory — the regime
/// `er snapshot build --out-of-core` exists for. Deterministic for a fixed
/// seed, like every preset.
pub fn xl(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        matched_pairs: 300_000,
        side1: SideConfig {
            size: 420_000,
            attributes: 4,
            attr_name_pool: 5,
            noise: NoiseConfig { token_drop: 0.20, token_typo: 0.03, extra_tokens: 0.4 },
        },
        side2: SideConfig {
            size: 630_000,
            attributes: 6,
            attr_name_pool: 8,
            noise: NoiseConfig { token_drop: 0.15, token_typo: 0.04, extra_tokens: 0.6 },
        },
        object: ObjectConfig { vocab_size: 600_000, zipf_exponent: 0.8, tokens_mean: 7 },
    }
}

/// A miniature benchmark for tests, examples and doc snippets: 150 matched
/// pairs across 200 × 250 profiles. Generates in milliseconds.
pub fn tiny(seed: u64) -> DatasetConfig {
    DatasetConfig {
        seed,
        matched_pairs: 150,
        side1: SideConfig {
            size: 200,
            attributes: 3,
            attr_name_pool: 4,
            noise: NoiseConfig { token_drop: 0.15, token_typo: 0.05, extra_tokens: 0.5 },
        },
        side2: SideConfig {
            size: 250,
            attributes: 5,
            attr_name_pool: 6,
            noise: NoiseConfig { token_drop: 0.10, token_typo: 0.05, extra_tokens: 0.8 },
        },
        object: ObjectConfig { vocab_size: 2_500, zipf_exponent: 1.0, tokens_mean: 10 },
    }
}

/// Generates the Clean-Clean dataset for a preset config.
///
/// # Errors
/// [`er_model::Error::InvalidConfig`] if `config` fails validation — the
/// presets in this module always pass, but callers may have modified the
/// config before building.
pub fn build(config: &DatasetConfig) -> er_model::error::Result<GeneratedDataset> {
    generate(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(d1c(1).validate().is_ok());
        assert!(d2c(1).validate().is_ok());
        assert!(d3c(1, 0.01).validate().is_ok());
        assert!(d3c(1, 1.0).validate().is_ok());
        assert!(tiny(1).validate().is_ok());
        assert!(xl(1).validate().is_ok());
    }

    #[test]
    fn xl_crosses_the_million_entity_line() {
        let c = xl(9);
        assert!(c.side1.size + c.side2.size >= 1_000_000);
    }

    #[test]
    #[should_panic(expected = "scale must lie in")]
    fn d3c_rejects_zero_scale() {
        d3c(1, 0.0);
    }

    #[test]
    fn tiny_builds_quickly_and_correctly() {
        let d = build(&tiny(7)).unwrap();
        assert_eq!(d.collection.len(), 450);
        assert_eq!(d.ground_truth.len(), 150);
    }

    #[test]
    fn d3c_scales_linearly() {
        let a = d3c(1, 0.01);
        let b = d3c(1, 0.02);
        assert!((b.side1.size as f64 / a.side1.size as f64 - 2.0).abs() < 0.01);
        assert!(b.matched_pairs > a.matched_pairs);
    }
}
