//! # enhanced-metablocking
//!
//! Umbrella crate of the Enhanced Meta-blocking reproduction (Papadakis et
//! al., EDBT 2016). It re-exports every workspace crate under one roof and
//! hosts the runnable examples and the cross-crate integration tests.
//!
//! Start with [`mb-core`](mb_core) for the meta-blocking algorithms and with
//! `examples/quickstart.rs` for an end-to-end pipeline.

#![warn(missing_docs)]

pub use er_baselines as baselines;
pub use er_blocking as blocking;
pub use er_datagen as datagen;
pub use er_eval as eval;
pub use er_io as io;
pub use er_model as model;
pub use er_resolve as resolve;
pub use mb_core as metablocking;
pub use mb_observe as observe;
